// Package skiphash is the public API of the skip hash: a fast,
// linearizable, concurrent ordered map built on software transactional
// memory, reproducing Rodriguez, Aksenov and Spear, "Skip Hash: A Fast
// Ordered Map Via Software Transactional Memory".
//
// # Construction
//
// The surface is two generic entry points per shape — New for
// in-memory maps, Open for durable ones (Open with a nil
// Config.Durability is exactly New):
//
//	m := skiphash.New[int64, string](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
//	d, err := skiphash.Open[int64, string](skiphash.Int64Less, skiphash.Hash64,
//	    skiphash.Config{Durability: &skiphash.Durability{Dir: dir}},
//	    skiphash.Int64Codec(), skiphash.StringCodec())
//
// and their hash-partitioned counterparts NewSharded / OpenSharded:
//
//	s := skiphash.NewSharded[string, string](skiphash.StringLess, skiphash.HashString,
//	    skiphash.Config{Shards: 16})
//
// less supplies the ordering, hash the distribution over shards (top
// bits) and buckets (low bits); Int64Less/Hash64 and
// StringLess/HashString are the stock pairs for the two key types the
// repository exercises end to end. The remaining typed constructors
// (NewInt64, NewString, OpenInt64Sharded, ...) predate this surface;
// they survive as deprecated one-line wrappers so no caller breaks, and
// new code should not use them.
//
// Config.Shards is the initial partition count, not a lifetime
// commitment — see the Resharding section below.
//
// # Design
//
// A skip hash composes two transactional structures behind one
// abstraction: a closed-addressing hash map routing each key to the node
// holding it, and a doubly linked skip list keeping the nodes ordered.
// Every elemental operation is a single STM transaction, which makes the
// composition trivially atomic and yields O(1) expected complexity for
// everything except successful insertion and absent-key point queries
// (those pay one O(log n) skip list search).
//
// Range queries use a fast-path/slow-path scheme. The fast path runs the
// whole query as one transaction that does not retry; under contention
// or for very long ranges it falls back to a slow path coordinated by a
// range query coordinator (RQC): the query takes a version number,
// traverses from safe node to safe node in a resumable transaction, and
// logically deleted nodes it still needs are kept stitched until it
// finishes.
//
// Point reads (Lookup, Contains) go further: they first try an
// optimistic fast path that bypasses the STM entirely, walking the hash
// index raw and validating the bucket's ownership record word before
// and after the walk (a seqlock-style sample/revalidate, with no clock
// read and no transaction descriptor). A validated walk is linearizable
// as-is; any interference falls back to the ordinary read-only
// transaction, which remains the source of truth.
// Config.DisableReadFastPath disables the bypass.
//
// # Usage
//
//	m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
//	m.Insert(42, 420)
//	v, ok := m.Lookup(42)
//	pairs := m.Range(10, 100, nil)
//
// Hot paths should give each goroutine its own Handle, closed when the
// worker is done:
//
//	h := m.NewHandle()
//	defer h.Close()
//	h.Insert(1, 10)
//
// Because the map is STM-based, multi-key atomicity comes for free:
//
//	_ = m.Atomic(func(op *skiphash.Txn[int64, int64]) error {
//	    op.Remove(1)
//	    op.Insert(2, 20) // observers see both or neither
//	    return nil
//	})
//
// # Sharding
//
// For machines with many cores, NewSharded hash-partitions the map
// across Config.Shards independent skip hashes (default: a power of two
// derived from GOMAXPROCS), each a complete hash-index + skip list +
// range-query coordinator, so point operations on different shards
// share no cachelines. Ordered operations are k-way merged across
// shards. By default all shards run on one STM runtime whose monotonic
// commit clock writes no shared memory, which keeps ranges, point
// queries and Atomic batches fully linearizable across shards:
//
//	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64,
//	    skiphash.Config{Shards: 16})
//
// Setting Config.IsolatedShards gives every shard a private STM runtime
// and — via Config.ClockFactory, or by default — a private clock, so
// counter-based clocks stop sharing a commit-tick cacheline (a non-nil
// Config.Clock instance would still be shared by every shard). The
// price is a weaker cross-shard contract: ranges and iterators merge per-shard snapshots taken at
// distinct instants, and an Atomic batch must stay within one shard; a
// batch whose keys span shards fails with ErrCrossShard rather than
// silently losing atomicity.
//
// # Resharding
//
// Config.Shards is only the initial partition count: Sharded.Resize
// live-migrates the map to a new power-of-two count while reads and
// writes keep serving. The migration copies each hash-space group
// through bounded stamp-consistent snapshot chunks, replays the
// commit-ordered delta of writes that landed during the copy, and cuts
// the group's routing over to the destination shards under a brief
// per-group write pause; an epoch-style route table guarantees every
// key has exactly one authoritative shard at every instant. In shared
// mode the whole migration is invisible to linearizability; in isolated
// mode groups cut over one at a time under the usual per-shard
// contract. Sharded.Shards reports the live count,
// Sharded.ResizeStats the migration counters, and the serving stack
// exposes both (RESIZE wire op, client.Resize, skiphashd -shards as the
// initial count). See the README's Resharding section for the protocol
// and operational guidance.
//
// # Durability and recovery
//
// Setting Config.Durability and constructing through Open (or
// OpenSharded) makes the map persistent: every committed insert, remove
// and Atomic batch is appended to a CRC-framed write-ahead log tagged
// with its STM commit stamp — the paper's global-version clock gives
// the log a total order for free — and background snapshots, taken in
// chunked consistent reads while writers proceed, bound replay and
// truncate covered segments. Open recovers the newest valid snapshot
// plus the strictly-newer log tail, tolerating a torn final record
// after a crash and rejecting checksum corruption with an error
// matching ErrCorrupt.
//
// The fsync-policy contract (Durability.Fsync): FsyncAlways
// group-commits — when an update returns, its record is fsynced, so a
// crash loses nothing acknowledged; FsyncInterval (the default) fsyncs
// in the background at least every Durability.FsyncEvery, bounding loss
// to that window; FsyncNone never fsyncs while running and is only as
// durable as the OS page cache (power loss can cost everything since
// the last snapshot or Sync). All policies flush and fsync on a clean
// Close; Map.Sync forces durability on demand and Map.Snapshot writes a
// snapshot now. Atomic batches are single log records: recovery sees a
// batch entirely or not at all, including batches spanning shards on
// the shared-runtime sharded map.
//
// Operations report their in-memory result; they cannot individually
// report a durability failure (by the time the log is involved, the
// transaction has committed). A log I/O error — a full or failing disk
// — is sticky: from that point the engine stops logging, and Map.Sync,
// Map.Snapshot and the Persister's Err all return the error. An update
// that commits while Close is already draining (or after it) cannot be
// logged either; the divergence is counted and reported by Err and the
// Persister's Close, so quiesce writers before Close when every
// acknowledged update must be durable. Map.Close flushes but cannot
// return an error (Close has no error result), so a checked shutdown is
// Sync then Close, then Persister().Err(). Deployments that must bound
// data loss under disk failure should check Sync at checkpoints
// (FsyncAlways callers: Err after critical writes) rather than rely on
// per-operation acknowledgments.
//
// Durable sharded maps in isolated mode keep one engine per shard in
// generation-suffixed subdirectories, with a meta record tracking the
// live shard count; reopen recovers at the recorded count, so resizes
// survive restarts. A crash strictly inside a resize recovers the
// previous generation, which may lose writes accepted during the
// migration window itself; shared mode's single WAL has no such window.
//
// # Serving
//
// The map embeds; cmd/skiphashd serves. The daemon exposes a sharded
// (optionally durable) map over TCP or a unix socket speaking a
// CRC-framed binary protocol (internal/wire), with pipelined requests
// coalesced into atomic transactions at the server (internal/server);
// the skiphash/client package is the matching client, whose typed
// errors are these same sentinels — errors.Is(err, ErrCrossShard)
// holds whether the Atomic that crossed isolated shards ran in-process
// or on the far side of a socket.
//
// The wire speaks two op families over one framing. The v1 ops carry
// fixed 8-byte int64 keys and values and address the daemon's default
// map. The v2 ops carry length-prefixed byte-string keys and values
// and a namespace id: one daemon hosts many named byte-string maps,
// created and dropped at runtime or
// pinned at boot (skiphashd -ns / -ns-root), each durable namespace
// with its own WAL directory and fsync policy that survive restarts.
// The encoding is canonical — any frame the parser accepts re-encodes
// byte-identically, fuzz-enforced — and malformed input is always a
// connection-tearing ProtocolError, never a misdecoded message.
// Per-namespace connection and coalescing quotas answer over-quota
// requests with a busy status per request rather than tearing the
// connection; the client surfaces namespace admin failures as
// ErrNamespaceNotFound/ErrNamespaceExists, errors.Is-matchable across
// the wire like every other sentinel.
//
// A durable daemon can additionally replicate: internal/repl streams
// the commit-stamp-ordered WAL to live replicas that apply records
// through the recovery replay rules and serve read-only traffic at an
// advertised watermark (skiphashd -replicate-addr / -follow;
// client.GetAt fans barriered reads out across replicas, and Promote
// turns a replica into a writable successor whose clock is floored
// above everything it applied). Commit stamps are comparable only
// within one primary lineage — see internal/repl for the consistency
// contract.
//
// # Observability
//
// Every layer surfaces counters through cheap Stats() accessors
// (Sharded.STMStats, Map.MaintenanceStats, persist.Store.Stats,
// repl.Replica.Stats), and the daemon assembles them — plus latency
// histograms for commits, fsyncs and per-namespace requests, and a
// slow-op ring tracer — into one internal/obs registry rendered as
// Prometheus text exposition (skiphashd -metrics, the Stats wire op,
// client.ServerStats). Metrics are strictly additive: the serving and
// read fast paths write only striped atomics, never shared metric
// state. See the README's Observability section for the endpoint and
// series naming.
//
// # Handle lifecycle and maintenance
//
// Removals defer their physical unstitching through per-handle buffers
// (§4.5 of the paper); the lifecycle subsystem guarantees those nodes
// are reclaimed no matter what happens to the handle. Close a Handle
// when its goroutine exits: the handle leaves the stats registry and
// its buffered removals move to the map's orphan queue. The pooled
// handles behind the convenience methods do this automatically on every
// call. Orphaned nodes are unstitched in bounded transactional batches
// — by a background maintainer goroutine when Config.Maintenance is
// set (recommended for long-running servers; observe it through
// Map.MaintenanceStats), or inline once the queue crosses a threshold
// otherwise. Map.Close / Sharded.Close stops the maintainer and flushes
// everything; maps with Maintenance set must be closed.
package skiphash
