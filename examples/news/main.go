// News: a multi-tenant feed store on one skiphash daemon — the
// walkthrough for byte-string namespaces. A parent process plays the
// operator and client; a child process (this same binary, re-executed)
// plays the daemon, serving a namespace registry over real TCP.
//
// The walkthrough: create two durable namespaces ("feeds" for feed
// metadata, "articles" for article bodies under "<feed>/<seq>" keys),
// write string-keyed data through the wire's v2 ops, run a prune loop
// that atomically trims each feed to its newest articles, then
// SIGKILL the daemon mid-service — a real crash, no flush — and start
// a fresh daemon on the same root. Namespace discovery reopens both
// maps from their WALs, and every acknowledged write (and prune)
// must still be there.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/server"
	"repro/skiphash"
	"repro/skiphash/client"
)

const (
	feedCount    = 3
	articlesPer  = 8
	keepPerFeed  = 3 // the prune loop trims each feed to this many
	daemonEnv    = "NEWS_DAEMON_ROOT"
	daemonBanner = "NEWS_ADDR "
)

func main() {
	if root := os.Getenv(daemonEnv); root != "" {
		runDaemon(root)
		return
	}

	root, err := os.MkdirTemp("", "news-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Boot the daemon and create the tenant namespaces: one for feed
	// metadata, one for article bodies, each with its own WAL directory
	// under the daemon's namespace root.
	daemon, addr := startDaemon(root)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	opts := client.NamespaceOptions{Durable: true, Fsync: client.NsFsyncAlways}
	feeds, err := c.CreateNamespace("feeds", opts)
	if err != nil {
		log.Fatal(err)
	}
	articles, err := c.CreateNamespace("articles", opts)
	if err != nil {
		log.Fatal(err)
	}

	// Publish: feed metadata keyed by string id, articles keyed
	// "<feed>/<seq>" so one lexicographic range scans one feed.
	for f := 0; f < feedCount; f++ {
		feed := feedID(f)
		if _, err := feeds.Put([]byte(feed), []byte(fmt.Sprintf("The %s feed", feed))); err != nil {
			log.Fatal(err)
		}
		for a := 0; a < articlesPer; a++ {
			key := fmt.Sprintf("%s/%04d", feed, a)
			body := fmt.Sprintf("article %d of %s", a, feed)
			if _, err := articles.Put([]byte(key), []byte(body)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("published %d feeds x %d articles\n", feedCount, articlesPer)

	// Prune loop: trim every feed to its newest keepPerFeed articles.
	// Each feed's trim is one atomic batch, so a reader never observes
	// a half-pruned feed.
	for f := 0; f < feedCount; f++ {
		feed := feedID(f)
		pairs, err := articles.Range([]byte(feed+"/"), []byte(feed+"/~"), 0)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) <= keepPerFeed {
			continue
		}
		var steps []client.BStep
		for _, p := range pairs[:len(pairs)-keepPerFeed] {
			steps = append(steps, client.BStep{Kind: client.StepRemove, Key: p.Key})
		}
		if _, err := articles.Atomic(steps); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pruned %s: %d -> %d articles\n", feed, len(pairs), keepPerFeed)
	}

	// Crash. SIGKILL gives the daemon no chance to flush or shut down
	// cleanly — what survives is exactly what the per-namespace WALs
	// had fsynced, and with NsFsyncAlways that is every acknowledged
	// write and prune.
	c.Close()
	daemon.Process.Kill()
	daemon.Wait()
	fmt.Println("daemon killed")

	// Reopen: a fresh daemon on the same root discovers both ns-*
	// directories and recovers them. Namespace ids are per-process, so
	// the client re-resolves its handles by name.
	daemon, addr = startDaemon(root)
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	c, err = client.Dial(addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	feeds, err = c.Namespace("feeds")
	if err != nil {
		log.Fatal(err)
	}
	articles, err = c.Namespace("articles")
	if err != nil {
		log.Fatal(err)
	}

	for f := 0; f < feedCount; f++ {
		feed := feedID(f)
		title, ok, err := feeds.Get([]byte(feed))
		if err != nil || !ok {
			log.Fatalf("feed %s lost in the crash (ok=%v err=%v)", feed, ok, err)
		}
		pairs, err := articles.Range([]byte(feed+"/"), []byte(feed+"/~"), 0)
		if err != nil {
			log.Fatal(err)
		}
		if len(pairs) != keepPerFeed {
			log.Fatalf("feed %s recovered %d articles, want the pruned %d", feed, len(pairs), keepPerFeed)
		}
		// The prune kept the newest window: the first surviving key is
		// articlesPer-keepPerFeed.
		wantFirst := fmt.Sprintf("%s/%04d", feed, articlesPer-keepPerFeed)
		if string(pairs[0].Key) != wantFirst {
			log.Fatalf("feed %s oldest survivor %q, want %q", feed, pairs[0].Key, wantFirst)
		}
		fmt.Printf("recovered %q: %d articles, oldest %s\n", title, len(pairs), pairs[0].Key)
	}
	fmt.Println("ok: every acknowledged write and prune survived the crash")
}

func feedID(f int) string { return fmt.Sprintf("feed-%c", 'a'+f) }

// startDaemon re-executes this binary as the serving child and waits
// for its address banner.
func startDaemon(root string) (*exec.Cmd, string) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), daemonEnv+"="+root)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), daemonBanner); ok {
			go func() { // drain so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return cmd, addr
		}
	}
	log.Fatal("daemon exited before announcing its address")
	return nil, ""
}

// runDaemon is the child: a minimal multi-namespace skiphashd — a
// default int64 map plus a namespace registry rooted at root — serving
// loopback TCP until SIGTERM.
func runDaemon(root string) {
	reg, err := server.NewRegistry(server.RegistryConfig{
		Root:       root,
		Map:        skiphash.Config{Shards: 2},
		Durability: skiphash.Durability{Fsync: skiphash.FsyncAlways},
	})
	if err != nil {
		log.Fatal(err)
	}
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Shards: 2})
	srv := server.NewWithRegistry(server.NewShardedBackend(m), reg, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s%s\n", daemonBanner, ln.Addr())
	go srv.Serve(ln)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM)
	<-sigs
	// SIGTERM is the clean path (the walkthrough's crash is SIGKILL,
	// which never gets here): close the namespaces and exit.
	reg.CloseAll()
	m.Close()
	os.Exit(0)
}
