// Timeseries: a sliding-window metrics store. Writer goroutines append
// timestamped readings; an aggregator computes windowed statistics with
// linearizable range queries while an evictor trims expired samples with
// point queries — all concurrently, which is exactly the mixed workload
// (inserts + removals + overlapping ranges) the skip hash's range query
// coordinator exists to make fast.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/skiphash"
)

func main() {
	// Keys are nanosecond timestamps; values are sensor readings.
	store := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	var written, evicted, windows atomic.Int64

	done := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	now := func() int64 { return time.Since(start).Nanoseconds() }

	// Writers: each sensor appends readings at its own cadence. The
	// timestamp is perturbed per sensor so keys rarely collide.
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(sensor int64) {
			defer wg.Done()
			h := store.NewHandle()
			rng := rand.New(rand.NewPCG(uint64(sensor), 7))
			for {
				select {
				case <-done:
					return
				default:
				}
				ts := now()*10 + sensor // interleave sensors in key space
				reading := 1000 + int64(rng.Uint64()%100)
				if h.Insert(ts, reading) {
					written.Add(1)
				}
			}
		}(int64(s))
	}

	// Aggregator: 10ms sliding-window min/max/mean over all sensors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := store.NewHandle()
		var buf []skiphash.Pair[int64, int64]
		for {
			select {
			case <-done:
				return
			default:
			}
			hi := now() * 10
			lo := hi - 10*time.Millisecond.Nanoseconds()*10
			buf = h.Range(lo, hi, buf[:0])
			if len(buf) == 0 {
				continue
			}
			min, max, sum := buf[0].Val, buf[0].Val, int64(0)
			for _, p := range buf {
				if p.Val < min {
					min = p.Val
				}
				if p.Val > max {
					max = p.Val
				}
				sum += p.Val
			}
			if min < 1000 || max >= 1100 {
				panic("window aggregate saw an impossible reading")
			}
			windows.Add(1)
		}
	}()

	// Evictor: drops samples older than 50ms using Pred to find them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := store.NewHandle()
		for {
			select {
			case <-done:
				return
			default:
			}
			cutoff := (now() - 50*time.Millisecond.Nanoseconds()) * 10
			for {
				k, _, ok := h.Pred(cutoff)
				if !ok {
					break
				}
				if h.Remove(k) {
					evicted.Add(1)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(done)
	wg.Wait()

	remaining := store.Range(0, 1<<62, nil)
	fmt.Printf("samples written: %d\n", written.Load())
	fmt.Printf("samples evicted: %d\n", evicted.Load())
	fmt.Printf("windows served:  %d\n", windows.Load())
	fmt.Printf("samples resident: %d\n", len(remaining))
	if oldest, _, ok := store.Ceil(0); ok {
		fmt.Printf("oldest resident sample age: %v\n",
			time.Duration(now()-oldest/10))
	}
}
