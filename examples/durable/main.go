// Durable: open a persistent skip hash, write through the fsync
// policies, survive a simulated crash, and recover — the full
// open → write → crash → reopen loop in one run.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/skiphash"
)

func main() {
	dir, err := os.MkdirTemp("", "skiphash-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Config.Durability turns Open into open-or-recover. FsyncAlways
	// group-commits: when an update returns, its WAL record is fsynced,
	// so even a hard crash loses nothing acknowledged. FsyncInterval
	// (the default) bounds loss to a background window; FsyncNone logs
	// without fsyncing and is only as durable as the OS page cache.
	cfg := skiphash.Config{Durability: &skiphash.Durability{
		Dir:   dir,
		Fsync: skiphash.FsyncAlways,
	}}
	m, err := skiphash.Open[int64, string](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.StringCodec())
	if err != nil {
		log.Fatal(err)
	}

	// Committed operations — including atomic batches — are logged with
	// their STM commit stamps; a batch is one WAL record, recovered
	// all-or-nothing.
	m.Insert(1, "ares")
	m.Insert(2, "boreas")
	_ = m.Atomic(func(op *skiphash.Txn[int64, string]) error {
		op.Insert(3, "chronos")
		op.Put(1, "apollo") // observers (and recovery) see both or neither
		return nil
	})
	m.Remove(2)

	// A snapshot bounds replay: the map is iterated at pinned clock
	// stamps while writers proceed, then fully covered WAL segments are
	// truncated. (Background snapshots also run automatically once the
	// WAL outgrows Durability.SnapshotBytes.)
	if err := m.Snapshot(); err != nil {
		log.Fatal(err)
	}
	m.Insert(4, "demeter") // lives only in the WAL tail, after the snapshot

	// Simulate a process crash: buffered state is dropped, nothing more
	// is logged, files are left exactly as a kill would leave them.
	if err := m.SimulateCrash(); err != nil {
		log.Fatal(err)
	}
	m.Close()
	fmt.Println("crashed with 3 keys on disk (snapshot + WAL tail)")

	// Reopen: newest valid snapshot, then strictly-newer WAL records
	// replayed in commit-stamp order.
	m2, err := skiphash.Open[int64, string](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.StringCodec())
	if err != nil {
		log.Fatal(err)
	}
	defer m2.Close()
	for k, v := range m2.All() {
		fmt.Printf("recovered %d = %s\n", k, v)
	}
	if _, ok := m2.Lookup(2); ok {
		log.Fatal("key 2 was removed before the crash and must stay removed")
	}
}
