// Server: the full serving lifecycle over real TCP — start a durable
// skiphashd-style server, write through a pipelining protocol client,
// crash the durability engine mid-flight, then reopen the directory
// and serve it again to prove every acknowledged-and-synced write came
// back. This is the start → write → crash → reopen walkthrough for the
// network layer, the wire twin of examples/durable.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// serve opens (or recovers) the durable sharded map in dir and starts
// serving it on a loopback TCP listener.
func serve(dir string) (*skiphash.Sharded[int64, int64], *server.Server, string) {
	cfg := skiphash.Config{
		Shards: 4,
		// FsyncAlways group-commits: when the server acknowledges an
		// update, its WAL record is fsynced. The walkthrough relies on
		// that — everything acknowledged before the crash must survive.
		Durability: &skiphash.Durability{Dir: dir, Fsync: skiphash.FsyncAlways},
	}
	m, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(server.NewShardedBackend(m), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return m, srv, ln.Addr().String()
}

func main() {
	dir, err := os.MkdirTemp("", "skiphash-server-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Start: recover-or-create the map, serve it over TCP. --------
	m, srv, addr := serve(dir)
	fmt.Printf("serving %d shards on tcp://%s (dir %s)\n", m.NumShards(), addr, dir)

	// --- Write: a protocol client, pipelining a burst. ----------------
	cl, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		log.Fatal(err)
	}
	cn := cl.Conn(0)
	calls := make([]*client.Call, 0, 100)
	for k := int64(0); k < 100; k++ {
		call, err := cn.Start(&wire.Request{Op: wire.OpInsert, Key: k, Val: k * 7})
		if err != nil {
			log.Fatal(err)
		}
		calls = append(calls, call)
	}
	if err := cn.Flush(); err != nil { // one write syscall for the burst
		log.Fatal(err)
	}
	for _, call := range calls {
		if _, err := call.Wait(); err != nil {
			log.Fatal(err)
		}
	}
	// A wire batch is one atomic transaction server-side: both inserts
	// commit together or not at all, even coalesced among other
	// pipelined traffic.
	if _, err := cl.Atomic([]client.Step{
		{Kind: client.StepInsert, Key: 1000, Val: 1},
		{Kind: client.StepInsert, Key: 1001, Val: 1},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined 100 inserts + 1 atomic batch over one connection")

	// --- Crash. -------------------------------------------------------
	// Abandon the durability engine the way a kill -9 would: buffered
	// WAL records are gone, files stay as they were. (FsyncAlways means
	// nothing acknowledged was still buffered.)
	if err := m.SimulateCrash(); err != nil {
		log.Fatal(err)
	}
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancel()
	m.Close()
	fmt.Println("crashed: WAL abandoned mid-flight, server torn down")

	// --- Reopen: recover and serve the same directory again. ----------
	m2, srv2, addr2 := serve(dir)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		m2.Close()
	}()
	cl2, err := client.Dial(addr2, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Close()
	pairs, err := cl2.Range(0, 2000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered and re-served: %d pairs survive the crash\n", len(pairs))
	for _, k := range []int64{0, 42, 99, 1000, 1001} {
		v, ok, err := cl2.Get(k)
		if err != nil || !ok {
			log.Fatalf("key %d lost across the crash (ok=%v err=%v)", k, ok, err)
		}
		_ = v
	}
	fmt.Println("all acknowledged writes present — start, write, crash, reopen: done")
}
