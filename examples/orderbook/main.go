// Orderbook: a concurrent limit order book on two skip hashes, the kind
// of ordered-map workload the paper's introduction motivates. Price
// levels are keys; traders insert and cancel orders concurrently while a
// market-data goroutine streams linearizable depth snapshots via range
// queries, and a matching goroutine uses point queries (best bid = Floor
// from the top, best ask = Ceil from the bottom) to cross the book.
//
// The skip hash's guarantees map directly onto exchange requirements:
// updates are O(1) expected, and a depth snapshot can never observe a
// half-applied order move because multi-level mutations run in one STM
// transaction.
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/skiphash"
)

const (
	priceLevels = 10_000 // price grid in ticks
	midPrice    = priceLevels / 2
)

type book struct {
	bids *skiphash.Map[int64, int64] // price -> resting quantity
	asks *skiphash.Map[int64, int64]
}

func newBook() *book {
	return &book{
		bids: skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 30011}),
		asks: skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Buckets: 30011}),
	}
}

// quote places quantity at a price level, accumulating atomically.
func quote(side *skiphash.Map[int64, int64], price, qty int64) {
	_ = side.Atomic(func(op *skiphash.Txn[int64, int64]) error {
		if cur, ok := op.Lookup(price); ok {
			op.Remove(price)
			op.Insert(price, cur+qty)
		} else {
			op.Insert(price, qty)
		}
		return nil
	})
}

// cancel removes up to qty from a price level, deleting empty levels.
func cancel(side *skiphash.Map[int64, int64], price, qty int64) {
	_ = side.Atomic(func(op *skiphash.Txn[int64, int64]) error {
		cur, ok := op.Lookup(price)
		if !ok {
			return nil
		}
		op.Remove(price)
		if cur > qty {
			op.Insert(price, cur-qty)
		}
		return nil
	})
}

func main() {
	b := newBook()
	var placed, cancelled, matches, snapshots atomic.Int64

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Traders: random quoting and cancelling around the mid price.
	for t := 0; t < 6; t++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 42))
			for {
				select {
				case <-done:
					return
				default:
				}
				offset := int64(rng.Uint64()%500) + 1
				if rng.Uint64()%10 == 0 {
					offset = -2 // aggressive order crossing the spread
				}
				qty := int64(rng.Uint64()%100) + 1
				side, price := b.bids, midPrice-offset
				if rng.Uint64()&1 == 0 {
					side, price = b.asks, midPrice+offset
				}
				if rng.Uint64()%4 == 0 {
					cancel(side, price, qty)
					cancelled.Add(1)
				} else {
					quote(side, price, qty)
					placed.Add(1)
				}
			}
		}(uint64(t) + 1)
	}

	// Matcher: crosses the book whenever best bid >= best ask.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			bid, _, okB := b.bids.Floor(priceLevels)
			ask, _, okA := b.asks.Ceil(0)
			if okB && okA && bid >= ask {
				cancel(b.bids, bid, 10)
				cancel(b.asks, ask, 10)
				matches.Add(1)
			}
		}
	}()

	// Market data: linearizable depth snapshots near the touch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := b.bids.NewHandle()
		var buf []skiphash.Pair[int64, int64]
		for {
			select {
			case <-done:
				return
			default:
			}
			buf = h.Range(midPrice-100, midPrice, buf[:0])
			snapshots.Add(1)
			for i := 1; i < len(buf); i++ {
				if buf[i].Key <= buf[i-1].Key {
					panic("depth snapshot not sorted: torn range query")
				}
			}
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(done)
	wg.Wait()

	bidDepth := b.bids.Range(0, priceLevels, nil)
	askDepth := b.asks.Range(0, priceLevels, nil)
	fmt.Printf("orders placed:   %d\n", placed.Load())
	fmt.Printf("orders canceled: %d\n", cancelled.Load())
	fmt.Printf("matches crossed: %d\n", matches.Load())
	fmt.Printf("depth snapshots: %d\n", snapshots.Load())
	fmt.Printf("resting levels:  %d bids, %d asks\n", len(bidDepth), len(askDepth))
	if bb, _, ok := b.bids.Floor(priceLevels); ok {
		fmt.Printf("best bid: %d\n", bb)
	}
	if ba, _, ok := b.asks.Ceil(0); ok {
		fmt.Printf("best ask: %d\n", ba)
	}
}
