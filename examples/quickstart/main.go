// Quickstart: the skip hash's elemental operations, point queries, range
// queries, and the transactional batch API, on one goroutine.
package main

import (
	"fmt"

	"repro/skiphash"
)

func main() {
	// A map from int64 keys to string values. The zero Config selects
	// the paper's recommended two-path range queries.
	m := skiphash.New[int64, string](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})

	// Elemental operations are O(1) expected: the hash half of the
	// composition routes straight to the node.
	for i, name := range []string{"ares", "boreas", "chronos", "demeter", "eos"} {
		m.Insert(int64(i*10), name)
	}
	if v, ok := m.Lookup(20); ok {
		fmt.Println("Lookup(20) =", v)
	}
	m.Remove(30)

	// Point queries fall back to the skip list half only when the key
	// is absent.
	if k, v, ok := m.Ceil(25); ok {
		fmt.Printf("Ceil(25) = %d (%s)\n", k, v)
	}
	if k, v, ok := m.Pred(20); ok {
		fmt.Printf("Pred(20) = %d (%s)\n", k, v)
	}

	// Range queries are linearizable: they observe one atomic snapshot.
	fmt.Print("Range(0, 40):")
	for _, p := range m.Range(0, 40, nil) {
		fmt.Printf(" %d=%s", p.Key, p.Val)
	}
	fmt.Println()

	// STM composability: several operations as one indivisible step.
	_ = m.Atomic(func(op *skiphash.Txn[int64, string]) error {
		v, _ := op.Lookup(40)
		op.Remove(40)
		op.Insert(35, v) // rename key 40 -> 35 atomically
		return nil
	})
	fmt.Print("after atomic move:")
	for _, p := range m.Range(0, 40, nil) {
		fmt.Printf(" %d=%s", p.Key, p.Val)
	}
	fmt.Println()
}
