// Atomicbatch: the STM dividend. An inventory ledger moves stock between
// warehouse locations with multi-key transactions; auditors take range
// snapshots of whole shelves concurrently. Because every transfer is one
// STM transaction and every snapshot is linearizable, the total stock is
// identical in every audit — a guarantee lock-free maps cannot offer
// without external coordination, and the skip hash gets for free (§1's
// "multi-word atomic operations can be fast and simple").
package main

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/skiphash"
)

const (
	locations  = 4096
	perLoc     = 100
	totalStock = locations * perLoc
)

func main() {
	ledger := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{})
	for loc := int64(0); loc < locations; loc++ {
		ledger.Insert(loc, perLoc)
	}

	var transfers, audits atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Movers: transfer random quantities between random locations,
	// deleting emptied shelves and creating new ones — so the key set
	// churns, not just the values.
	for mv := 0; mv < 8; mv++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := ledger.NewHandle()
			rng := rand.New(rand.NewPCG(seed, 0xabc))
			for {
				select {
				case <-done:
					return
				default:
				}
				from := int64(rng.Uint64() % locations)
				to := int64(rng.Uint64() % locations)
				if from == to {
					continue
				}
				qty := int64(rng.Uint64()%50) + 1
				err := h.Atomic(func(op *skiphash.Txn[int64, int64]) error {
					fromQty, ok := op.Lookup(from)
					if !ok || fromQty < qty {
						return nil // not enough stock; commit as no-op
					}
					op.Remove(from)
					if fromQty > qty {
						op.Insert(from, fromQty-qty)
					}
					toQty, _ := op.Lookup(to)
					op.Remove(to)
					op.Insert(to, toQty+qty)
					return nil
				})
				if err == nil {
					transfers.Add(1)
				}
			}
		}(uint64(mv) + 1)
	}

	// Auditors: every range snapshot must account for every unit.
	for a := 0; a < 3; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := ledger.NewHandle()
			var buf []skiphash.Pair[int64, int64]
			for {
				select {
				case <-done:
					return
				default:
				}
				buf = h.Range(0, locations, buf[:0])
				var sum int64
				for _, p := range buf {
					sum += p.Val
				}
				if sum != totalStock {
					panic(fmt.Sprintf("audit found %d units, expected %d: torn snapshot",
						sum, totalStock))
				}
				audits.Add(1)
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	close(done)
	wg.Wait()

	final := ledger.Range(0, locations, nil)
	var sum int64
	for _, p := range final {
		sum += p.Val
	}
	fmt.Printf("transfers committed: %d\n", transfers.Load())
	fmt.Printf("audits passed:       %d (every one saw exactly %d units)\n",
		audits.Load(), totalStock)
	fmt.Printf("final stock:         %d units across %d locations\n", sum, len(final))
	if sum != totalStock {
		panic("final stock drifted")
	}
}
