package main

import (
	"log"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/skiphash"
)

// instrumentedStore is the durability engine's observability surface;
// persist.Store implements it (obtained, like walTapper, by asserting
// the core.Persister the map hands back).
type instrumentedStore interface {
	Instrument(fsyncLatency, batchRecords, snapDuration *obs.Histogram)
	Stats() persist.StoreStats
}

// buildRegistry wires every subsystem the daemon runs into one obs
// registry: STM transaction counters and commit latency, the
// reclamation maintainer, the durability engine, and the replication
// roles. The server layer registers its own series through
// server.Config.Obs; namespaces theirs through RegistryConfig.Obs.
// Everything here is a Func metric over existing Stats() accessors or
// a histogram fed by an observer hook — nothing new on any hot path.
func buildRegistry(m *skiphash.Sharded[int64, int64], rep *repl.Replica, prim *repl.Primary) *obs.Registry {
	reg := obs.NewRegistry()

	// STM. One aggregated Stats() snapshot per scrape would be nicer
	// than one per Func, but STMStats is a handful of atomic loads per
	// shard — scrape cadence makes the duplication irrelevant.
	stats := m.STMStats
	reg.CounterFunc("skiphash_stm_commits_total",
		"Successfully committed transactions.",
		func() uint64 { return stats().Commits })
	reg.CounterFunc("skiphash_stm_readonly_commits_total",
		"Committed transactions that never wrote.",
		func() uint64 { return stats().ReadOnlyCommits })
	reg.CounterFunc("skiphash_stm_aborts_total",
		"Rolled-back attempts by reason.",
		func() uint64 { return stats().AbortsValidate }, obs.Label{Key: "reason", Value: "validate"})
	reg.CounterFunc("skiphash_stm_aborts_total",
		"Rolled-back attempts by reason.",
		func() uint64 { return stats().AbortsAcquire }, obs.Label{Key: "reason", Value: "acquire"})
	reg.CounterFunc("skiphash_stm_aborts_total",
		"Rolled-back attempts by reason.",
		func() uint64 { return stats().AbortsInjected }, obs.Label{Key: "reason", Value: "injected"})
	reg.CounterFunc("skiphash_stm_user_errors_total",
		"Transactions rolled back by a user error return.",
		func() uint64 { return stats().UserErrors })
	reg.CounterFunc("skiphash_stm_backoff_nanoseconds_total",
		"Wall time spent in inter-attempt contention backoff.",
		func() uint64 { return stats().BackoffNanos })
	reg.CounterFunc("skiphash_stm_fastread_hits_total",
		"Point reads answered by the optimistic non-transactional fast path.",
		func() uint64 { return stats().FastReadHits })
	reg.CounterFunc("skiphash_stm_fastread_fallbacks_total",
		"Optimistic fast-path reads that fell back to a full transaction.",
		func() uint64 { return stats().FastReadFallbacks })

	commitLatency := reg.Histogram("skiphash_stm_commit_seconds",
		"Successful commit wall time, first begin to commit, retries included.",
		obs.LatencyBounds, 1e-9)
	m.SetCommitObserver(commitLatency)

	// Reclamation. The drain histogram observes whole adoption drains
	// (any shard); the backlog gauge is labeled per shard so a stuck
	// maintainer is attributable.
	maint := m.MaintenanceStats
	reg.CounterFunc("skiphash_core_orphaned_total",
		"Nodes handed to the orphan queues across shards.",
		func() uint64 { return maint().Orphaned })
	reg.CounterFunc("skiphash_core_adopted_total",
		"Orphaned nodes adopted for reclamation across shards.",
		func() uint64 { return maint().Adopted })
	reg.CounterFunc("skiphash_core_drained_nodes_total",
		"Logically deleted nodes physically unstitched across shards.",
		func() uint64 { return maint().DrainedNodes })
	reg.CounterFunc("skiphash_core_drain_batches_total",
		"Bounded reclamation transactions across shards.",
		func() uint64 { return maint().DrainBatches })
	reg.CounterFunc("skiphash_core_maintainer_wakeups_total",
		"Background maintainer loop iterations across shards.",
		func() uint64 { return maint().Wakeups })
	// The per-shard backlog gauge set follows the live shard count:
	// gauges resolve their shard at sample time (returning 0 if their
	// index has been resized away), and the resize observer below
	// re-syncs the registered set after each cutover.
	var shardGaugeMu sync.Mutex
	shardGauges := 0
	syncShardGauges := func() {
		shardGaugeMu.Lock()
		defer shardGaugeMu.Unlock()
		n := m.NumShards()
		for i := shardGauges; i < n; i++ {
			i := i
			reg.GaugeFunc("skiphash_shard_orphan_backlog",
				"Orphaned nodes awaiting adoption on this shard.",
				func() float64 {
					if i >= m.NumShards() {
						return 0
					}
					return float64(m.Shard(i).OrphanBacklog())
				},
				obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		}
		for i := n; i < shardGauges; i++ {
			reg.Unregister("skiphash_shard_orphan_backlog",
				obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		}
		shardGauges = n
	}
	syncShardGauges()
	drainDur := reg.Histogram("skiphash_core_maintenance_drain_seconds",
		"Orphan-adoption drain wall time (one observation per drain, any shard).",
		obs.LatencyBounds, 1e-9)
	m.SetMaintenanceObserver(func(nodes int, d time.Duration) {
		drainDur.ObserveNanos(int64(d))
	})

	// Resharding. Counters are Funcs over ResizeStats; the histogram
	// observes each migration group's write pause at cutover, which is
	// also the moment the per-shard gauge set is brought up to date.
	rz := m.ResizeStats
	reg.CounterFunc("skiphash_resize_total",
		"Completed live shard-count migrations.",
		func() uint64 { return rz().Resizes })
	reg.CounterFunc("skiphash_resize_keys_copied_total",
		"Keys moved to destination shards by resize snapshot-chunk copies.",
		func() uint64 { return rz().KeysCopied })
	reg.CounterFunc("skiphash_resize_delta_applied_total",
		"Tapped writes replayed onto destination shards during resizes.",
		func() uint64 { return rz().DeltaApplied })
	reg.CounterFunc("skiphash_resize_cutovers_total",
		"Migration-group authority flips performed.",
		func() uint64 { return rz().Cutovers })
	reg.GaugeFunc("skiphash_resize_in_flight",
		"1 while a resize migration is running, else 0.",
		func() float64 {
			if m.Resizing() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("skiphash_shards",
		"Live shard count (the target count while a resize is migrating).",
		func() float64 { return float64(m.Shards()) })
	cutoverDur := reg.Histogram("skiphash_resize_cutover_seconds",
		"Per-group write-pause duration at resize cutover.",
		obs.LatencyBounds, 1e-9)
	m.SetResizeObserver(func(group, tail int, d time.Duration) {
		cutoverDur.ObserveNanos(int64(d))
		syncShardGauges()
	})

	rng := m.RangeStats
	reg.CounterFunc("skiphash_core_range_fast_attempts_total",
		"Fast-path range query attempts.",
		func() uint64 { return rng().FastAttempts })
	reg.CounterFunc("skiphash_core_range_fast_aborts_total",
		"Fast-path range attempts that aborted to the slow path.",
		func() uint64 { return rng().FastAborts })
	reg.CounterFunc("skiphash_core_range_slow_commits_total",
		"Range queries that committed via the RQC slow path.",
		func() uint64 { return rng().SlowCommits })

	// Durability engine (absent on in-memory and replica maps).
	if st, ok := m.Persister().(instrumentedStore); ok {
		registerPersist(reg, st)
	}

	// Replication roles.
	if rep != nil {
		rs := rep.Stats
		reg.CounterFunc("skiphash_repl_records_total",
			"WAL records applied from the replication stream.",
			func() uint64 { return rs().Records })
		reg.CounterFunc("skiphash_repl_resyncs_total",
			"Full resyncs performed (snapshot reload), initial sync included.",
			func() uint64 { return rs().Resyncs })
		reg.CounterFunc("skiphash_repl_epoch_changes_total",
			"Primary epoch changes observed (each forces a full resync).",
			func() uint64 { return rs().EpochChanges })
		reg.GaugeFunc("skiphash_repl_watermark",
			"Replica applied commit-stamp watermark.",
			func() float64 { return float64(rs().Watermark) })
		reg.GaugeFunc("skiphash_repl_lag",
			"Replication lag in commit-stamp units: freshest advertised primary stamp minus applied watermark.",
			func() float64 {
				s := rs()
				return float64(s.PrimaryStamp - s.Watermark)
			})
	}
	if prim != nil {
		ps := prim.Stats
		reg.GaugeFunc("skiphash_repl_stream_seq",
			"Newest WAL record sequence in the primary's replication ring.",
			func() float64 { return float64(ps().LastSeq) })
		reg.GaugeFunc("skiphash_repl_followers",
			"Live follower subscriptions.",
			func() float64 { return float64(ps().Followers) })
		reg.CounterFunc("skiphash_repl_resyncs_served_total",
			"Full resyncs served to followers.",
			func() uint64 { return ps().Resyncs })
	}
	return reg
}

// registerPersist attaches the durability engine's histograms and
// exposes its counters.
func registerPersist(reg *obs.Registry, st instrumentedStore) {
	fsyncDur := reg.Histogram("skiphash_persist_fsync_seconds",
		"WAL fsync wall time.", obs.LatencyBounds, 1e-9)
	batchRecs := reg.Histogram("skiphash_persist_batch_records",
		"Records per group-commit flush.", obs.SizeBounds, 1)
	snapDur := reg.Histogram("skiphash_persist_snapshot_seconds",
		"Snapshot attempt wall time.", obs.LatencyBounds, 1e-9)
	st.Instrument(fsyncDur, batchRecs, snapDur)
	reg.CounterFunc("skiphash_persist_records_total",
		"WAL records appended since open.",
		func() uint64 { return st.Stats().Records })
	reg.CounterFunc("skiphash_persist_appended_bytes_total",
		"WAL bytes appended since open.",
		func() uint64 { return uint64(st.Stats().AppendedBytes) })
	reg.CounterFunc("skiphash_persist_flushes_total",
		"WAL buffer write-outs.",
		func() uint64 { return st.Stats().Flushes })
	reg.CounterFunc("skiphash_persist_syncs_total",
		"WAL fsyncs.",
		func() uint64 { return st.Stats().Syncs })
	reg.CounterFunc("skiphash_persist_snapshots_total",
		"Completed snapshots.",
		func() uint64 { return st.Stats().Snapshots })
	reg.CounterFunc("skiphash_persist_segments_deleted_total",
		"WAL segments truncated behind snapshots.",
		func() uint64 { return st.Stats().SegmentsDeleted })
	reg.CounterFunc("skiphash_persist_late_syncs_total",
		"Sync calls that raced Close/crash and returned ErrSyncRaced.",
		func() uint64 { return st.Stats().LateSyncs })
	reg.GaugeFunc("skiphash_persist_bytes_since_snapshot",
		"WAL bytes accumulated since the last snapshot.",
		func() float64 { return float64(st.Stats().BytesSinceSnap) })
}

// logStats periodically logs one structured line of per-interval
// registry deltas — counters as deltas, gauges at their current value,
// zero-delta series elided — until done is closed. It replaces the old
// STM-only stats logger: every subsystem that registers a series is
// covered automatically.
func logStats(reg *obs.Registry, every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	prev := sampleMap(reg)
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		cur := sampleMap(reg)
		log.Printf("skiphashd: stats (%v): %s", every, statsLine(prev, cur))
		prev = cur
	}
}

// logFinalStats emits the drain-time stats line: lifetime counter
// totals and final gauge values for every registered series.
func logFinalStats(reg *obs.Registry) {
	log.Printf("skiphashd: final stats: %s", statsLine(nil, sampleMap(reg)))
}

// sampleMap flattens the registry to series-key → sample.
func sampleMap(reg *obs.Registry) map[string]obs.Sample {
	out := make(map[string]obs.Sample)
	for _, s := range reg.Samples() {
		out[s.Name+s.Labels] = s
	}
	return out
}

// statsLine renders space-separated name{labels}=value pairs: counter
// values relative to prev (elided at zero delta; lifetime totals when
// prev is nil), gauges at their current value (elided at zero).
func statsLine(prev, cur map[string]obs.Sample) string {
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		s := cur[k]
		v := s.Value
		if s.Kind == "counter" && prev != nil {
			v -= prev[k].Value
		}
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteString(s.Labels)
		b.WriteByte('=')
		b.WriteString(formatStatValue(v))
	}
	if b.Len() == 0 {
		return "(all zero)"
	}
	return b.String()
}

// formatStatValue prints integers without a fraction; histogram _sum
// samples of seconds-scaled series are the only fractional values, and
// three decimals is plenty for a log line.
func formatStatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}
