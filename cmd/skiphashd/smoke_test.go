package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/skiphash/client"
)

// TestSmokeMetrics builds the daemon binary, runs it with the metrics
// endpoint and slow-op tracer enabled, drives client traffic, scrapes
// /metrics over HTTP, and drains it with SIGTERM — the end-to-end
// check CI runs on every change. SKIPHASH_SMOKE_TRACE_MS overrides the
// tracer threshold (the nightly lane sets 0 to trace every request).
func TestSmokeMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("exec smoke test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "skiphashd")
	buildArgs := []string{"build", "-o", bin}
	if os.Getenv("SKIPHASH_SMOKE_RACE") != "" {
		// The daemon is exec'd, so the harness's own -race does not
		// instrument it; the nightly lane opts the binary in explicitly.
		buildArgs = append(buildArgs, "-race")
	}
	if out, err := exec.Command("go", append(buildArgs, ".")...).CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	traceMs := os.Getenv("SKIPHASH_SMOKE_TRACE_MS")
	if traceMs == "" {
		traceMs = "50"
	}
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-metrics", "127.0.0.1:0",
		"-trace-slow-ms", traceMs,
		"-stats-every", "1s",
		"-quiet")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its bound addresses; collect them (and keep
	// draining stderr so the child never blocks on the pipe).
	var (
		mu      sync.Mutex
		lines   []string
		srvAddr string
		metURL  string
	)
	servingRe := regexp.MustCompile(`serving \d+ shards on tcp://([^ ]+) `)
	metricsRe := regexp.MustCompile(`metrics on (http://[^ ]+/metrics)`)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			if m := servingRe.FindStringSubmatch(sc.Text()); m != nil {
				srvAddr = m[1]
			}
			if m := metricsRe.FindStringSubmatch(sc.Text()); m != nil {
				metURL = m[1]
			}
			mu.Unlock()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		ok := srvAddr != "" && metURL != ""
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not announce its addresses; log:\n%s", logText(&mu, &lines))
		}
		time.Sleep(10 * time.Millisecond)
	}

	c, err := client.Dial(srvAddr, client.Options{})
	if err != nil {
		t.Fatalf("dial %s: %v", srvAddr, err)
	}
	for k := int64(0); k < 64; k++ {
		if _, err := c.Put(k, k); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatalf("Get: %v", err)
		}
	}
	blob, err := c.ServerStats()
	if err != nil {
		t.Fatalf("ServerStats: %v", err)
	}
	c.Close()

	resp, err := http.Get(metURL)
	if err != nil {
		t.Fatalf("scrape %s: %v", metURL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read scrape: %v", err)
	}
	for _, text := range []struct{ name, s string }{
		{"scrape", string(body)},
		{"ServerStats blob", string(blob)},
	} {
		for _, want := range []string{
			`skiphash_stm_commits_total`,
			`skiphash_stm_aborts_total{reason="validate"}`,
			`skiphash_server_request_seconds_count{ns="default"}`,
			`skiphash_server_requests_total`,
		} {
			if !strings.Contains(text.s, want) {
				t.Errorf("%s missing %s:\n%s", text.name, want, text.s)
			}
		}
		if nonZero(t, text.s, "skiphash_stm_commits_total") == 0 {
			t.Errorf("%s: no commits counted after traffic", text.name)
		}
		if nonZero(t, text.s, "skiphash_server_requests_total") == 0 {
			t.Errorf("%s: no requests counted after traffic", text.name)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Drain stderr to EOF before Wait — Wait closes the pipe and would
	// race the scanner out of the final log lines.
	<-scanDone
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v; log:\n%s", err, logText(&mu, &lines))
	}
	if !strings.Contains(logText(&mu, &lines), "final stats:") {
		t.Fatalf("no final stats line on drain; log:\n%s", logText(&mu, &lines))
	}
}

// nonZero extracts the value of an unlabeled counter sample from a
// text exposition, returning 0 when absent or zero.
func nonZero(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.e+]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("parse %s value %q: %v", name, m[1], err)
	}
	return v
}

func logText(mu *sync.Mutex, lines *[]string) string {
	mu.Lock()
	defer mu.Unlock()
	return strings.Join(*lines, "\n")
}
