// Command skiphashd serves a skip hash over the wire protocol
// (internal/wire) on TCP and/or a unix socket.
//
// The served map is the sharded skip hash; -shards 1 degenerates to a
// single shard and -isolated switches to per-shard STM runtimes (then
// atomic batches must stay within one shard). With -dir the map is
// durable: it is recovered from the directory on start, every
// committed update is written to the commit-stamp-ordered WAL under
// the chosen -fsync policy, and a clean shutdown syncs before closing.
//
// Shutdown is signal-driven: SIGINT/SIGTERM stops accepting, drains
// in-flight pipelined requests (bounded by -drain-timeout), quiesces
// the map's removal buffers, syncs the WAL, and closes the map.
//
// Observability: -stats-every logs per-interval STM counter deltas
// (commits, aborts, optimistic read hits and fallbacks); -pprof serves
// net/http/pprof on a loopback address for live CPU/heap profiling of
// the drain loop.
//
// Usage:
//
//	skiphashd [-addr host:port] [-unix path]
//	          [-shards n] [-isolated] [-maintenance]
//	          [-dir path] [-fsync none|interval|always] [-fsync-every d]
//	          [-max-conns n] [-max-batch n] [-write-timeout d] [-idle-timeout d]
//	          [-drain-timeout d] [-stats-every d] [-pprof host:port] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/skiphash"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7466", "TCP listen address (empty disables)")
		unixPath     = flag.String("unix", "", "unix socket path (empty disables)")
		shards       = flag.Int("shards", 0, "shard count (0 derives from GOMAXPROCS)")
		isolated     = flag.Bool("isolated", false, "per-shard STM runtimes (batches must stay within one shard)")
		maintenance  = flag.Bool("maintenance", true, "background reclamation maintainer")
		dir          = flag.String("dir", "", "durability directory (empty = in-memory only)")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: none, interval, always")
		fsyncEvery   = flag.Duration("fsync-every", 0, "interval policy's fsync period (0 = engine default)")
		maxConns     = flag.Int("max-conns", 256, "connection limit")
		maxBatch     = flag.Int("max-batch", 64, "max pipelined requests coalesced into one transaction")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client response deadline")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
		statsEvery   = flag.Duration("stats-every", time.Minute, "STM stats log period (0 disables)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this loopback address (empty disables)")
		quiet        = flag.Bool("quiet", false, "suppress per-connection diagnostics")
	)
	flag.Parse()
	if *addr == "" && *unixPath == "" {
		log.Fatal("skiphashd: nothing to listen on (-addr and -unix both empty)")
	}

	cfg := skiphash.Config{
		Shards:         *shards,
		IsolatedShards: *isolated,
		Maintenance:    *maintenance,
	}
	if *dir != "" {
		var policy skiphash.FsyncPolicy
		switch *fsync {
		case "none":
			policy = skiphash.FsyncNone
		case "interval":
			policy = skiphash.FsyncInterval
		case "always":
			policy = skiphash.FsyncAlways
		default:
			log.Fatalf("skiphashd: unknown -fsync policy %q", *fsync)
		}
		cfg.Durability = &skiphash.Durability{Dir: *dir, Fsync: policy, FsyncEvery: *fsyncEvery}
	}
	m, err := skiphash.OpenInt64Sharded[int64](cfg, skiphash.Int64Codec())
	if err != nil {
		log.Fatalf("skiphashd: open: %v", err)
	}

	srvCfg := server.Config{
		MaxConns:     *maxConns,
		MaxBatch:     *maxBatch,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	if !*quiet {
		srvCfg.Logf = log.Printf
	}
	srv := server.New(server.NewShardedBackend(m), srvCfg)

	if *pprofAddr != "" {
		if !loopbackAddr(*pprofAddr) {
			log.Fatalf("skiphashd: -pprof %q is not a loopback address", *pprofAddr)
		}
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("skiphashd: pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("skiphashd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("skiphashd: pprof server: %v", err)
			}
		}()
	}

	statsDone := make(chan struct{})
	if *statsEvery > 0 {
		go logStats(m, *statsEvery, statsDone)
	} else {
		close(statsDone)
	}

	var wg sync.WaitGroup
	serveErrs := make(chan error, 2)
	listen := func(network, laddr string) {
		ln, err := net.Listen(network, laddr)
		if err != nil {
			log.Fatalf("skiphashd: listen %s %s: %v", network, laddr, err)
		}
		log.Printf("skiphashd: serving %d shards on %s://%s (durability: %s)",
			m.NumShards(), network, ln.Addr(), durabilityDesc(*dir, *fsync))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil {
				serveErrs <- fmt.Errorf("serve %s://%s: %w", network, laddr, err)
			}
		}()
	}
	if *addr != "" {
		listen("tcp", *addr)
	}
	if *unixPath != "" {
		os.Remove(*unixPath) // a stale socket from a previous run refuses rebinding
		listen("unix", *unixPath)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("skiphashd: %v: draining (up to %v)", sig, *drainTimeout)
	case err := <-serveErrs:
		log.Printf("skiphashd: %v: draining", err)
	}

	if *statsEvery > 0 {
		close(statsDone)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("skiphashd: drain incomplete: %v", err)
	}
	wg.Wait()
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	exit := 0
	if *dir != "" {
		if err := m.Sync(); err != nil {
			log.Printf("skiphashd: final sync: %v", err)
			exit = 1
		}
	}
	m.Close()
	if *dir != "" {
		if p := m.Persister(); p != nil {
			if err := p.Err(); err != nil {
				log.Printf("skiphashd: durability engine: %v", err)
				exit = 1
			}
		}
	}
	log.Printf("skiphashd: bye")
	os.Exit(exit)
}

func durabilityDesc(dir, fsync string) string {
	if dir == "" {
		return "off"
	}
	return fmt.Sprintf("%s, fsync=%s", dir, fsync)
}

// loopbackAddr reports whether addr binds a loopback interface; the
// pprof endpoint exposes heap contents and must not face the network.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(strings.Trim(host, "[]"))
	return ip != nil && ip.IsLoopback()
}

// logStats periodically logs STM counter deltas — commit/abort volume
// and the optimistic read fast path's hit/fallback split — until done
// is closed.
func logStats(m *skiphash.Sharded[int64, int64], every time.Duration, done <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	prev := m.STMStats()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		cur := m.STMStats()
		d := cur.Sub(prev)
		prev = cur
		log.Printf("skiphashd: stats (%v): commits=%d aborts=%d ro-commits=%d fast-read-hits=%d fast-read-fallbacks=%d",
			every, d.Commits, d.Aborts, d.ReadOnlyCommits, d.FastReadHits, d.FastReadFallbacks)
	}
}
