// Command skiphashd serves a skip hash over the wire protocol
// (internal/wire) on TCP and/or a unix socket.
//
// The served map is the sharded skip hash; -shards 1 degenerates to a
// single shard and -isolated switches to per-shard STM runtimes (then
// atomic batches must stay within one shard). -shards only sets the
// initial count: the RESIZE wire op live-migrates the map to a new
// count under traffic, and on a durable isolated-shard map the count
// recorded in the shard meta file wins over the flag on restart. With
// -dir the map is durable: it is recovered from the directory on
// start, every committed update is written to the commit-stamp-ordered
// WAL under the chosen -fsync policy, and a clean shutdown syncs
// before closing.
//
// Shutdown is signal-driven: SIGINT/SIGTERM stops accepting, drains
// in-flight pipelined requests (bounded by -drain-timeout), quiesces
// the map's removal buffers, syncs the WAL, and closes the map.
//
// Observability: every subsystem reports into one metrics registry
// (internal/obs) rendered in Prometheus text exposition — STM commits,
// aborts by reason and commit latency; reclamation drains; WAL fsync
// latency and group-commit batch sizes; per-namespace request latency;
// replication lag. -metrics serves /metrics and /debug/slowops on a
// loopback address, and the same handlers ride the -pprof mux; clients
// can fetch the exposition in-band with the Stats wire op.
// -trace-slow-ms arms a slow-op ring tracer (0 traces everything,
// dumped over HTTP and into the log on drain). -stats-every logs
// per-interval registry deltas and a final line on graceful drain;
// -pprof serves net/http/pprof on a loopback address for live CPU/heap
// profiling of the drain loop.
//
// Namespaces: one daemon hosts many named byte-string maps alongside
// the default int64 map. -ns name, -ns name=dir, and -ns name=dir:fsync
// (repeatable) open namespaces at boot — in-memory, durable at an
// explicit directory, or durable with its own fsync policy. -ns-root
// names the directory for namespaces created at runtime via the wire's
// NsCreate and re-discovers every ns-<name> subdirectory on start
// (their recorded fsync policies are restored). -ns-max-conns and
// -ns-max-batch set per-namespace quotas: a connection over a
// namespace's limit has its requests for that namespace answered
// StatusBusy, and coalesced namespace transactions are clamped.
// Namespaces are not replicated; -follow excludes them.
//
// Replication: with -replicate-addr a durable (-dir, non-isolated)
// server additionally streams its WAL to followers on that address.
// With -follow the daemon runs as a live replica instead: it syncs
// from the named primary's replication address, serves read-only
// traffic on -addr/-unix at its commit-stamp watermark (writes answer
// StatusReadOnly), and becomes writable when a client sends Promote —
// the replica's clock is floored above every applied stamp, so
// post-promotion commits extend the primary's order. A promoted
// replica is not durable and not replicating; restart it with -dir to
// resume either.
//
// Usage:
//
//	skiphashd [-addr host:port] [-unix path]
//	          [-shards n] [-isolated] [-maintenance]
//	          [-dir path] [-fsync none|interval|always] [-fsync-every d]
//	          [-ns name[=dir[:fsync]]]... [-ns-root path]
//	          [-ns-max-conns n] [-ns-max-batch n]
//	          [-replicate-addr host:port | -follow host:port]
//	          [-max-conns n] [-max-batch n] [-write-timeout d] [-idle-timeout d]
//	          [-drain-timeout d] [-stats-every d] [-quiet]
//	          [-metrics host:port] [-trace-slow-ms n] [-pprof host:port]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
)

// walTapper is the persistence engine's WAL tap surface.
type walTapper interface {
	TapWAL(func(stamp uint64, count int, ops []byte))
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7466", "TCP listen address (empty disables)")
		unixPath     = flag.String("unix", "", "unix socket path (empty disables)")
		shards       = flag.Int("shards", 0, "initial shard count (0 derives from GOMAXPROCS); RESIZE changes it live")
		isolated     = flag.Bool("isolated", false, "per-shard STM runtimes (batches must stay within one shard)")
		maintenance  = flag.Bool("maintenance", true, "background reclamation maintainer")
		dir          = flag.String("dir", "", "durability directory (empty = in-memory only)")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: none, interval, always")
		fsyncEvery   = flag.Duration("fsync-every", 0, "interval policy's fsync period (0 = engine default)")
		nsRoot       = flag.String("ns-root", "", "directory for runtime-created durable namespaces; ns-* subdirectories are reopened on start")
		nsMaxConns   = flag.Int("ns-max-conns", 0, "per-namespace connection quota (0 = unlimited)")
		nsMaxBatch   = flag.Int("ns-max-batch", 0, "per-namespace coalescing clamp (0 = -max-batch)")
		replAddr     = flag.String("replicate-addr", "", "stream the WAL to followers on this TCP address (requires -dir, excludes -isolated)")
		follow       = flag.String("follow", "", "run as a live replica of this primary replication address (excludes -dir and -replicate-addr)")
		maxConns     = flag.Int("max-conns", 256, "connection limit")
		maxBatch     = flag.Int("max-batch", 64, "max pipelined requests coalesced into one transaction")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "slow-client response deadline")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
		statsEvery   = flag.Duration("stats-every", time.Minute, "metrics-delta stats log period (0 disables)")
		metricsAddr  = flag.String("metrics", "", "serve /metrics and /debug/slowops on this loopback address (empty disables; both also ride -pprof)")
		traceSlowMs  = flag.Int64("trace-slow-ms", -1, "trace requests at or above this many milliseconds (0 traces everything, negative disables)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this loopback address (empty disables)")
		quiet        = flag.Bool("quiet", false, "suppress per-connection diagnostics")
	)
	var nsSpecs nsFlags
	flag.Var(&nsSpecs, "ns", "open a namespace at boot: name, name=dir, or name=dir:fsync (repeatable)")
	flag.Parse()
	if *addr == "" && *unixPath == "" {
		log.Fatal("skiphashd: nothing to listen on (-addr and -unix both empty)")
	}
	if *follow != "" && (*dir != "" || *replAddr != "") {
		log.Fatal("skiphashd: -follow excludes -dir and -replicate-addr (a replica is neither durable nor a stream source)")
	}
	if *follow != "" && (len(nsSpecs) > 0 || *nsRoot != "") {
		log.Fatal("skiphashd: -follow excludes -ns and -ns-root (namespaces are not replicated)")
	}
	if *replAddr != "" && *dir == "" {
		log.Fatal("skiphashd: -replicate-addr requires -dir (the stream is the WAL tap)")
	}
	if *replAddr != "" && *isolated {
		log.Fatal("skiphashd: -replicate-addr excludes -isolated (replication needs one commit-stamp domain)")
	}
	if *follow != "" && *isolated {
		log.Fatal("skiphashd: -follow excludes -isolated (applied stamps span one clock)")
	}

	cfg := skiphash.Config{
		Shards:         *shards,
		IsolatedShards: *isolated,
		Maintenance:    *maintenance,
	}
	if *dir != "" {
		cfg.Durability = &skiphash.Durability{Dir: *dir, Fsync: cfgFsyncPolicy(*fsync), FsyncEvery: *fsyncEvery}
	}
	var (
		m    *skiphash.Sharded[int64, int64]
		be   server.Backend
		rep  *repl.Replica
		prim *repl.Primary
	)
	if *follow != "" {
		// Replica mode: the map is fed by the replication stream, not by
		// clients — serve its read-only backend at the applied watermark.
		rep = repl.NewReplica(repl.ReplicaConfig{Addr: *follow, Map: cfg, Logf: log.Printf})
		m = rep.Map()
		be = rep.Backend()
		go func() {
			if err := rep.WaitReady(context.Background()); err == nil {
				log.Printf("skiphashd: replica caught up with %s at watermark %d", *follow, rep.Watermark())
			}
		}()
	} else {
		var err error
		m, err = skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
		if err != nil {
			log.Fatalf("skiphashd: open: %v", err)
		}
		be = server.NewShardedBackend(m)
		if *replAddr != "" {
			clockRead := m.Runtime().Clock().Read
			pcfg := repl.PrimaryConfig{
				Snapshot: func(chunkSize int, emit func(stamp uint64, pairs []wire.KV) error) error {
					kvs := make([]wire.KV, 0, chunkSize)
					return m.SnapshotChunks(chunkSize, func(stamp uint64, pairs []skiphash.Pair[int64, int64]) error {
						kvs = kvs[:0]
						for _, p := range pairs {
							kvs = append(kvs, wire.KV{Key: p.Key, Val: p.Val})
						}
						return emit(stamp, kvs)
					})
				},
				ClockRead: clockRead,
			}
			if !*quiet {
				pcfg.Logf = log.Printf
			}
			prim = repl.NewPrimary(pcfg)
			tp, ok := m.Persister().(walTapper)
			if !ok {
				log.Fatalf("skiphashd: persister %T has no WAL tap", m.Persister())
			}
			tp.TapWAL(prim.Append)
			rln, err := net.Listen("tcp", *replAddr)
			if err != nil {
				log.Fatalf("skiphashd: replication listen %s: %v", *replAddr, err)
			}
			log.Printf("skiphashd: replicating WAL on tcp://%s (epoch %d)", rln.Addr(), prim.Epoch())
			go func() {
				if err := prim.Serve(rln); err != nil {
					log.Printf("skiphashd: replication serve: %v", err)
				}
			}()
			// Serving clients see a Watermark op so barriered replica
			// reads have a primary-side stamp source.
			be = repl.PrimaryBackend(be, clockRead)
		}
	}

	obsReg := buildRegistry(m, rep, prim)
	var tracer *obs.Tracer
	if *traceSlowMs >= 0 {
		tracer = obs.NewTracer(256)
		tracer.SetThreshold(time.Duration(*traceSlowMs) * time.Millisecond)
	}

	srvCfg := server.Config{
		MaxConns:     *maxConns,
		MaxBatch:     *maxBatch,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		Obs:          obsReg,
		Tracer:       tracer,
		AbortsFn:     func() uint64 { return m.STMStats().Aborts },
	}
	if !*quiet {
		srvCfg.Logf = log.Printf
	}
	var reg *server.Registry
	if rep == nil {
		var err error
		reg, err = server.NewRegistry(server.RegistryConfig{
			Root:       *nsRoot,
			Map:        skiphash.Config{Shards: *shards, IsolatedShards: *isolated, Maintenance: *maintenance},
			Durability: skiphash.Durability{Fsync: cfgFsyncPolicy(*fsync), FsyncEvery: *fsyncEvery},
			MaxConns:   *nsMaxConns,
			MaxBatch:   *nsMaxBatch,
			Obs:        obsReg,
		})
		if err != nil {
			log.Fatalf("skiphashd: namespace registry: %v", err)
		}
		for _, spec := range nsSpecs {
			var err error
			if spec.dir != "" {
				_, err = reg.CreateAt(spec.name, spec.dir, spec.fsync)
			} else {
				_, err = reg.Create(spec.name, false, spec.fsync)
			}
			if err != nil {
				log.Fatalf("skiphashd: -ns %s: %v", spec.name, err)
			}
		}
		if n := len(reg.List()); n > 0 {
			log.Printf("skiphashd: serving %d namespace(s) besides the default map", n)
		}
	}
	srv := server.NewWithRegistry(be, reg, srvCfg)
	srv.SetDefaultDurable(*dir != "")

	// The metrics handlers ride the pprof DefaultServeMux and, with
	// -metrics, a dedicated loopback listener of their own.
	http.Handle("/metrics", obsReg)
	if tracer != nil {
		http.Handle("/debug/slowops", tracer)
	}
	if *metricsAddr != "" {
		if !loopbackAddr(*metricsAddr) {
			log.Fatalf("skiphashd: -metrics %q is not a loopback address", *metricsAddr)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", obsReg)
		if tracer != nil {
			mux.Handle("/debug/slowops", tracer)
		}
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("skiphashd: metrics listen %s: %v", *metricsAddr, err)
		}
		log.Printf("skiphashd: metrics on http://%s/metrics", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("skiphashd: metrics server: %v", err)
			}
		}()
	}
	if *pprofAddr != "" {
		if !loopbackAddr(*pprofAddr) {
			log.Fatalf("skiphashd: -pprof %q is not a loopback address", *pprofAddr)
		}
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("skiphashd: pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("skiphashd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("skiphashd: pprof server: %v", err)
			}
		}()
	}

	statsDone := make(chan struct{})
	if *statsEvery > 0 {
		go logStats(obsReg, *statsEvery, statsDone)
	} else {
		close(statsDone)
	}

	role := "standalone"
	switch {
	case rep != nil:
		role = "replica of " + *follow
	case prim != nil:
		role = "replicating primary"
	}
	var wg sync.WaitGroup
	serveErrs := make(chan error, 2)
	listen := func(network, laddr string) {
		ln, err := net.Listen(network, laddr)
		if err != nil {
			log.Fatalf("skiphashd: listen %s %s: %v", network, laddr, err)
		}
		log.Printf("skiphashd: serving %d shards on %s://%s (durability: %s, role: %s)",
			m.NumShards(), network, ln.Addr(), durabilityDesc(*dir, *fsync), role)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Serve(ln); err != nil {
				serveErrs <- fmt.Errorf("serve %s://%s: %w", network, laddr, err)
			}
		}()
	}
	if *addr != "" {
		listen("tcp", *addr)
	}
	if *unixPath != "" {
		os.Remove(*unixPath) // a stale socket from a previous run refuses rebinding
		listen("unix", *unixPath)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("skiphashd: %v: draining (up to %v)", sig, *drainTimeout)
	case err := <-serveErrs:
		log.Printf("skiphashd: %v: draining", err)
	}

	if *statsEvery > 0 {
		close(statsDone)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("skiphashd: drain incomplete: %v", err)
	}
	wg.Wait()
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
	if prim != nil {
		prim.Shutdown()
	}
	exit := 0
	if rep != nil {
		// The replica map is repl-owned: Close stops the stream and the
		// map together, and there is no durability engine to settle.
		rep.Close()
	} else {
		if *dir != "" {
			if err := m.Sync(); err != nil {
				log.Printf("skiphashd: final sync: %v", err)
				exit = 1
			}
		}
		m.Close()
		if *dir != "" {
			if p := m.Persister(); p != nil {
				if err := p.Err(); err != nil {
					log.Printf("skiphashd: durability engine: %v", err)
					exit = 1
				}
			}
		}
	}
	// The final stats line runs after teardown so it includes drain-time
	// work (final sync, close-path reclamation, any ErrSyncRaced races
	// surfacing as skiphash_persist_late_syncs_total).
	logFinalStats(obsReg)
	if tracer != nil && tracer.Total() > 0 {
		log.Printf("skiphashd: slow ops (%d traced):\n%s", tracer.Total(), tracer.String())
	}
	log.Printf("skiphashd: bye")
	os.Exit(exit)
}

// cfgFsyncPolicy maps the -fsync flag onto the engine's policy,
// exiting on an unknown name.
func cfgFsyncPolicy(fsync string) skiphash.FsyncPolicy {
	switch fsync {
	case "none":
		return skiphash.FsyncNone
	case "interval":
		return skiphash.FsyncInterval
	case "always":
		return skiphash.FsyncAlways
	default:
		log.Fatalf("skiphashd: unknown -fsync policy %q", fsync)
		return 0
	}
}

// nsSpec is one -ns flag: a namespace to open at boot.
type nsSpec struct {
	name  string
	dir   string // "" = in-memory
	fsync uint8  // wire.NsFsync* selector
}

// nsFlags collects repeated -ns flags: name, name=dir, or
// name=dir:fsync with fsync one of default, none, interval, always.
type nsFlags []nsSpec

func (f *nsFlags) String() string {
	parts := make([]string, 0, len(*f))
	for _, s := range *f {
		parts = append(parts, s.name)
	}
	return strings.Join(parts, ",")
}

func (f *nsFlags) Set(v string) error {
	spec := nsSpec{fsync: wire.NsFsyncDefault}
	name, rest, hasDir := strings.Cut(v, "=")
	spec.name = name
	if name == "" {
		return fmt.Errorf("-ns %q: empty namespace name", v)
	}
	if hasDir {
		dir, pol, hasPol := strings.Cut(rest, ":")
		if dir == "" {
			return fmt.Errorf("-ns %q: empty directory (omit '=' for an in-memory namespace)", v)
		}
		spec.dir = dir
		if hasPol {
			switch pol {
			case "default":
				spec.fsync = wire.NsFsyncDefault
			case "none":
				spec.fsync = wire.NsFsyncNone
			case "interval":
				spec.fsync = wire.NsFsyncInterval
			case "always":
				spec.fsync = wire.NsFsyncAlways
			default:
				return fmt.Errorf("-ns %q: unknown fsync policy %q", v, pol)
			}
		}
	}
	*f = append(*f, spec)
	return nil
}

func durabilityDesc(dir, fsync string) string {
	if dir == "" {
		return "off"
	}
	return fmt.Sprintf("%s, fsync=%s", dir, fsync)
}

// loopbackAddr reports whether addr binds a loopback interface; the
// pprof endpoint exposes heap contents and must not face the network.
func loopbackAddr(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return false
	}
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(strings.Trim(host, "[]"))
	return ip != nil && ip.IsLoopback()
}
