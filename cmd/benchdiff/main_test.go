package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
)

func writeReport(t *testing.T, path string, rows []bench.Row) {
	t.Helper()
	r := &bench.Report{}
	for _, row := range rows {
		r.Add(row)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := r.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestCompareMatchesOnFullKey(t *testing.T) {
	base := report{Rows: []bench.Row{
		{Experiment: "shards", Map: "skiphash-sharded-8", Threads: 8, Shards: 8, Mops: 10},
		{Experiment: "net", Map: "served", Threads: 8, Transport: "tcp", Pipeline: 64, Mops: 4},
		{Experiment: "net", Map: "served", Threads: 8, Transport: "tcp", Pipeline: 1, Mops: 1},
	}}
	cur := report{Rows: []bench.Row{
		{Experiment: "shards", Map: "skiphash-sharded-8", Threads: 8, Shards: 8, Mops: 9.5},
		{Experiment: "net", Map: "served", Threads: 8, Transport: "tcp", Pipeline: 64, Mops: 2}, // -50%
		{Experiment: "net", Map: "served", Threads: 8, Transport: "unix", Pipeline: 1, Mops: 1}, // no baseline
	}}
	deltas, unmatched, unmatchedBase := compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("compared %d measurements, want 2: %+v", len(deltas), deltas)
	}
	if unmatched != 1 {
		t.Fatalf("unmatched current = %d, want 1", unmatched)
	}
	if unmatchedBase != 1 {
		t.Fatalf("unmatched baseline = %d, want 1 (the closed-loop tcp row cur no longer measures)", unmatchedBase)
	}
	regs := regressions(deltas, 25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the pipelined tcp row", regs)
	}
	if regs[0].base != 4 || regs[0].cur != 2 {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
}

func TestKeyWidthAndNamespacesSeparateRows(t *testing.T) {
	// An int64 row and a byte-key row that agree on every other identity
	// column must never cross-compare: the byte-key series is a different
	// workload family, and comparing them would read the byte-key cost as
	// a regression of the int64 fast path (or mask a real one).
	base := report{Rows: []bench.Row{
		{Experiment: "net", Map: "served", Threads: 8, Transport: "tcp", Pipeline: 64, Mops: 10},
	}}
	cur := report{Rows: []bench.Row{
		{Experiment: "net", Map: "served", Threads: 8, Transport: "tcp", Pipeline: 64,
			KeyBytes: 16, Namespaces: 1, Mops: 2},
	}}
	deltas, unmatchedCur, unmatchedBase := compare(base, cur)
	if len(deltas) != 0 {
		t.Fatalf("int64 baseline compared against byte-key row: %+v", deltas)
	}
	if unmatchedCur != 1 || unmatchedBase != 1 {
		t.Fatalf("unmatched = %d/%d, want 1/1 (distinct identities)", unmatchedCur, unmatchedBase)
	}
	// And both dimensions separate independently.
	a := bench.Row{Experiment: "net", Map: "served", KeyBytes: 16, Namespaces: 1}
	b := a
	b.Namespaces = 3
	if key(a) == key(b) {
		t.Fatal("namespace count not part of the row identity")
	}
	b = a
	b.KeyBytes = 0
	if key(a) == key(b) {
		t.Fatal("key width not part of the row identity")
	}
}

func TestCompareSplitMetrics(t *testing.T) {
	base := report{Rows: []bench.Row{
		{Experiment: "fig6", Map: "skiphash-two-path", RangeLen: 100, UpdateMops: 2, RangeMpairs: 30},
	}}
	cur := report{Rows: []bench.Row{
		{Experiment: "fig6", Map: "skiphash-two-path", RangeLen: 100, UpdateMops: 1.9, RangeMpairs: 10},
	}}
	deltas, _, _ := compare(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("compared %d measurements, want 2 (update + range)", len(deltas))
	}
	regs := regressions(deltas, 25)
	if len(regs) != 1 || regs[0].metric != "range_mpairs" {
		t.Fatalf("regressions = %+v, want only range_mpairs", regs)
	}
}

func TestZeroMetricsNotCompared(t *testing.T) {
	// A baseline row without a metric (omitted zero) must not divide by
	// zero or produce a phantom regression.
	base := report{Rows: []bench.Row{{Experiment: "churn", Map: "m", Mops: 0}}}
	cur := report{Rows: []bench.Row{{Experiment: "churn", Map: "m", Mops: 5}}}
	deltas, _, _ := compare(base, cur)
	if len(deltas) != 0 {
		t.Fatalf("zero baseline compared: %+v", deltas)
	}
}

func TestWindowDistinguishesChurnRows(t *testing.T) {
	w0, w1 := 0, 1
	base := report{Rows: []bench.Row{
		{Experiment: "churn", Map: "m", Window: &w0, Mops: 10},
		{Experiment: "churn", Map: "m", Window: &w1, Mops: 1},
	}}
	cur := report{Rows: []bench.Row{
		{Experiment: "churn", Map: "m", Window: &w1, Mops: 1},
		{Experiment: "churn", Map: "m", Window: &w0, Mops: 10},
	}}
	deltas, unmatched, unmatchedBase := compare(base, cur)
	if len(deltas) != 2 || unmatched != 0 || unmatchedBase != 0 {
		t.Fatalf("deltas=%d unmatched=%d/%d, want 2/0/0", len(deltas), unmatched, unmatchedBase)
	}
	if regs := regressions(deltas, 25); len(regs) != 0 {
		t.Fatalf("false regressions across windows: %+v", regs)
	}
}

func TestEnvComparable(t *testing.T) {
	a := bench.Env{GoVersion: "go1.23.4", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 8, NumCPU: 8}
	b := a
	b.GoVersion = "go1.24.0"
	if !envComparable(a, b) {
		t.Fatal("toolchain-only difference must stay comparable")
	}
	c := a
	c.NumCPU = 16
	if envComparable(a, c) {
		t.Fatal("different core counts must not be comparable")
	}
	d := a
	d.GOARCH = "arm64"
	if envComparable(a, d) {
		t.Fatal("different architectures must not be comparable")
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	writeReport(t, path, []bench.Row{
		{Experiment: "net", Map: "served", Threads: 8, Transport: "unix", Pipeline: 64, Mops: 3.5},
	})
	r, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Transport != "unix" || r.Rows[0].Pipeline != 64 {
		t.Fatalf("round trip lost fields: %+v", r.Rows)
	}
	if r.Env.GoVersion == "" || r.Env.NumCPU == 0 {
		t.Fatalf("env header missing: %+v", r.Env)
	}
}

func TestCommittedBaselinesLoad(t *testing.T) {
	// The committed baselines at the repository root must stay readable
	// by the gate, whatever machine recorded them.
	for _, name := range []string{"BENCH_shards.json", "BENCH_churn.json", "BENCH_persist.json", "BENCH_net.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		r, err := loadReport(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Rows) == 0 {
			t.Fatalf("%s: no rows", name)
		}
		if r.Env.NumCPU == 0 {
			t.Fatalf("%s: missing env header", name)
		}
	}
}
