// Command benchdiff is the CI bench-regression gate: it compares a
// freshly recorded skipbench -json report against a committed
// BENCH_*.json baseline and fails (exit 1) when any matched data point
// regressed by more than the threshold.
//
// Rows are matched on their full identity (experiment, workload, map,
// threads, shards, range length, window, fsync policy, transport,
// pipeline depth, key width, namespace count) and only compared when the two reports' recording
// environments agree on GOOS/GOARCH/GOMAXPROCS/NumCPU — committed
// baselines come from whatever machine recorded them, and a throughput
// comparison across different hardware is noise, not signal. A pair
// whose environments differ is skipped with a note (override with
// -ignore-env); so is a current row with no baseline counterpart.
//
// Usage:
//
//	benchdiff [-threshold pct] [-warn] [-ignore-env] baseline.json:current.json ...
//
// Each positional argument is one baseline:current pair. With -warn the
// exit status stays 0 and regressions are only reported — the PR lane
// runs warn-only (quick-mode numbers on shared runners jitter), the
// nightly lane runs enforcing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// report mirrors bench.Report.WriteJSON's output shape.
type report struct {
	Env  bench.Env   `json:"env"`
	Rows []bench.Row `json:"rows"`
}

func loadReport(path string) (report, error) {
	var r report
	raw, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(raw, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// envComparable reports whether two recording environments produce
// comparable throughput numbers: same platform, same scheduler
// parallelism, same core count. Toolchain version differences are
// deliberately tolerated (the CI matrix varies them) but surfaced by
// the caller as a note.
func envComparable(a, b bench.Env) bool {
	return a.GOOS == b.GOOS && a.GOARCH == b.GOARCH &&
		a.GOMAXPROCS == b.GOMAXPROCS && a.NumCPU == b.NumCPU
}

// key is a row's full identity: two rows with equal keys measure the
// same data point.
func key(r bench.Row) string {
	window := ""
	if r.Window != nil {
		window = fmt.Sprint(*r.Window)
	}
	return strings.Join([]string{
		r.Experiment, r.Workload, r.Map,
		fmt.Sprint(r.Threads), fmt.Sprint(r.Shards), fmt.Sprint(r.RangeLen),
		fmt.Sprint(r.Universe), window, r.Fsync, r.Transport, fmt.Sprint(r.Pipeline),
		fmt.Sprint(r.KeyBytes), fmt.Sprint(r.Namespaces),
	}, "|")
}

// metric is one comparable throughput measurement of a row.
type metric struct {
	name string
	val  func(bench.Row) float64
}

// metrics are the throughput measurements the gate compares; a metric
// participates when the baseline row reports it positive — a current
// value that dropped to zero is then a full (-100%) regression, not a
// skip.
var metrics = []metric{
	{"mops", func(r bench.Row) float64 { return r.Mops }},
	{"update_mops", func(r bench.Row) float64 { return r.UpdateMops }},
	{"range_mpairs", func(r bench.Row) float64 { return r.RangeMpairs }},
}

// delta is one compared measurement.
type delta struct {
	key       string
	metric    string
	base, cur float64
	// changePct is (cur-base)/base*100; negative = slower.
	changePct float64
}

// compare matches cur's rows against base's and returns every
// comparable measurement plus the counts of rows on either side that
// had no counterpart — a baseline row nothing matches anymore means
// the gate's coverage shrank, which the caller must surface rather
// than let a report that matches nothing read as a clean pass.
func compare(base, cur report) (deltas []delta, unmatchedCur, unmatchedBase int) {
	index := make(map[string]bench.Row, len(base.Rows))
	matched := make(map[string]bool, len(base.Rows))
	for _, r := range base.Rows {
		index[key(r)] = r
	}
	for _, r := range cur.Rows {
		b, ok := index[key(r)]
		if !ok {
			unmatchedCur++
			continue
		}
		matched[key(r)] = true
		for _, m := range metrics {
			bv, cv := m.val(b), m.val(r)
			if bv <= 0 || cv < 0 || (bv == 0 && cv == 0) {
				continue
			}
			deltas = append(deltas, delta{
				key: key(r), metric: m.name, base: bv, cur: cv,
				changePct: (cv - bv) / bv * 100,
			})
		}
	}
	for k := range index {
		if !matched[k] {
			unmatchedBase++
		}
	}
	return deltas, unmatchedCur, unmatchedBase
}

// regressions filters deltas slower than -threshold%.
func regressions(deltas []delta, thresholdPct float64) []delta {
	var out []delta
	for _, d := range deltas {
		if d.changePct < -thresholdPct {
			out = append(out, d)
		}
	}
	return out
}

func main() {
	var (
		threshold = flag.Float64("threshold", 25, "regression threshold in percent")
		warn      = flag.Bool("warn", false, "report regressions but exit 0")
		ignoreEnv = flag.Bool("ignore-env", false, "compare even when recording environments differ")
		// An enforcing lane sets -min-compared so a comparison that
		// silently matched nothing (drifted row keys, skipped envs)
		// fails loudly instead of reading as a clean pass.
		minCompared = flag.Int("min-compared", 0, "fail unless at least this many measurements compared overall")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-warn] [-ignore-env] [-min-compared n] baseline.json:current.json ...")
		os.Exit(2)
	}

	failed := false
	totalCompared := 0
	for _, pair := range flag.Args() {
		basePath, curPath, ok := strings.Cut(pair, ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchdiff: bad pair %q (want baseline.json:current.json)\n", pair)
			os.Exit(2)
		}
		base, err := loadReport(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		cur, err := loadReport(curPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("== %s vs %s\n", basePath, curPath)
		if !envComparable(base.Env, cur.Env) {
			if !*ignoreEnv {
				fmt.Printf("   SKIP: environments differ (baseline %s/%s %d cpu maxprocs %d, current %s/%s %d cpu maxprocs %d); throughput not comparable\n",
					base.Env.GOOS, base.Env.GOARCH, base.Env.NumCPU, base.Env.GOMAXPROCS,
					cur.Env.GOOS, cur.Env.GOARCH, cur.Env.NumCPU, cur.Env.GOMAXPROCS)
				continue
			}
			fmt.Printf("   note: environments differ, compared anyway (-ignore-env)\n")
		}
		if base.Env.GoVersion != cur.Env.GoVersion {
			fmt.Printf("   note: toolchains differ (%s vs %s)\n", base.Env.GoVersion, cur.Env.GoVersion)
		}
		deltas, unmatchedCur, unmatchedBase := compare(base, cur)
		regs := regressions(deltas, *threshold)
		totalCompared += len(deltas)
		fmt.Printf("   %d measurements compared, %d current rows without baseline, %d baseline rows no longer measured\n",
			len(deltas), unmatchedCur, unmatchedBase)
		for _, d := range regs {
			fmt.Printf("   REGRESSION %s %s: %.3f -> %.3f (%.1f%%, threshold -%.0f%%)\n",
				d.key, d.metric, d.base, d.cur, d.changePct, *threshold)
		}
		if len(regs) > 0 {
			failed = true
		} else if len(deltas) > 0 {
			worst := 0.0
			for _, d := range deltas {
				if d.changePct < worst {
					worst = d.changePct
				}
			}
			fmt.Printf("   ok (worst change %.1f%%)\n", worst)
		}
	}
	if totalCompared < *minCompared {
		fmt.Printf("benchdiff: only %d measurements compared, need %d — the gate has lost its coverage\n",
			totalCompared, *minCompared)
		failed = true
	}
	if failed {
		if *warn {
			fmt.Println("benchdiff: problems found (warn-only mode, not failing)")
			return
		}
		os.Exit(1)
	}
}
