// Command skipstress hammers a skip hash with a mixed workload while
// continuously auditing correctness evidence: per-key linearization
// balances, range-query snapshot sanity, and (at the end) the full
// structural invariant check including deferred-reclamation drainage.
// It is the repository's long-running confidence tool; CI runs the same
// checks in miniature through the test suite.
//
// Usage:
//
//	skipstress [-threads n] [-duration d] [-universe n] [-mode two-path|fast|slow] [-shards n]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/skiphash"
)

// stressMap is the common face of the unsharded and sharded skip hash
// that the stress loop needs.
type stressMap interface {
	Lookup(k int64) (int64, bool)
	Quiesce()
	CheckInvariants(skiphash.CheckOptions) error
	RangeStats() skiphash.RangeStats
}

// stressHandle is the per-worker face; both skiphash.Handle and
// skiphash.ShardedHandle satisfy it.
type stressHandle interface {
	Insert(k, v int64) bool
	Remove(k int64) bool
	Lookup(k int64) (int64, bool)
	Range(l, r int64, out []skiphash.Pair[int64, int64]) []skiphash.Pair[int64, int64]
}

func main() {
	var (
		threads  = flag.Int("threads", runtime.GOMAXPROCS(0), "worker goroutines")
		duration = flag.Duration("duration", 5*time.Second, "stress duration")
		universe = flag.Int64("universe", 1<<16, "key universe")
		mode     = flag.String("mode", "two-path", "range path: two-path, fast, or slow")
		rangeLen = flag.Int64("rangelen", 128, "range query length")
		shards   = flag.Int("shards", 0, "shard count (0 = unsharded; -1 = GOMAXPROCS-derived)")
		isolated = flag.Bool("isolated", false, "per-shard STM runtimes (with -shards)")
	)
	flag.Parse()

	cfg := skiphash.Config{}
	switch *mode {
	case "fast":
		cfg.FastOnly = true
	case "slow":
		cfg.SlowOnly = true
	case "two-path":
	default:
		fmt.Fprintf(os.Stderr, "skipstress: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var m stressMap
	var newHandle func() stressHandle
	variant := "unsharded"
	if *shards != 0 {
		if *shards > 0 {
			cfg.Shards = *shards
		}
		cfg.IsolatedShards = *isolated
		sm := skiphash.NewInt64Sharded[int64](cfg)
		m = sm
		newHandle = func() stressHandle { return sm.NewHandle() }
		variant = fmt.Sprintf("%d shards", sm.NumShards())
		if *isolated {
			variant += " (isolated)"
		}
	} else {
		um := skiphash.NewInt64[int64](cfg)
		m = um
		newHandle = func() stressHandle { return um.NewHandle() }
	}

	fmt.Printf("skipstress: %d threads, %v, universe %d, mode %s, %s\n",
		*threads, *duration, *universe, *mode, variant)

	perKey := make([]atomic.Int64, *universe)
	var ops, ranges, failures atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := newHandle()
			rng := rand.New(rand.NewPCG(seed, seed^0x5eed))
			var buf []skiphash.Pair[int64, int64]
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < 32; i++ {
					k := int64(rng.Uint64() % uint64(*universe))
					switch rng.Uint64() % 8 {
					case 0, 1, 2:
						if h.Insert(k, k) {
							perKey[k].Add(1)
						}
					case 3, 4, 5:
						if h.Remove(k) {
							perKey[k].Add(-1)
						}
					case 6:
						if v, ok := h.Lookup(k); ok && v != k {
							fmt.Fprintf(os.Stderr, "FAIL: Lookup(%d) = %d\n", k, v)
							failures.Add(1)
						}
					case 7:
						buf = h.Range(k, k+*rangeLen, buf[:0])
						last := int64(-1)
						for _, p := range buf {
							if p.Key < k || p.Key > k+*rangeLen || p.Key <= last || p.Val != p.Key {
								fmt.Fprintf(os.Stderr, "FAIL: bad range pair %+v in [%d,%d]\n",
									p, k, k+*rangeLen)
								failures.Add(1)
								break
							}
							last = p.Key
						}
						ranges.Add(1)
					}
					ops.Add(1)
				}
			}
		}(uint64(t) + 1)
	}
	time.Sleep(*duration)
	close(done)
	wg.Wait()

	// Post-quiescence audits.
	m.Quiesce()
	bad := 0
	for k := int64(0); k < *universe; k++ {
		balance := perKey[k].Load()
		_, present := m.Lookup(k)
		want := int64(0)
		if present {
			want = 1
		}
		if balance != want {
			if bad < 10 {
				fmt.Fprintf(os.Stderr, "FAIL: key %d balance %d present %v\n", k, balance, present)
			}
			bad++
		}
	}
	if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: invariants: %v\n", err)
		bad++
	}
	s := m.RangeStats()
	fmt.Printf("ops=%d ranges=%d fast=%d slow=%d fast-aborts=%d\n",
		ops.Load(), ranges.Load(), s.FastCommits, s.SlowCommits, s.FastAborts)
	if bad > 0 || failures.Load() > 0 {
		fmt.Fprintf(os.Stderr, "skipstress: FAILED (%d balance errors, %d online failures)\n",
			bad, failures.Load())
		os.Exit(1)
	}
	fmt.Println("skipstress: PASS")
}
