// Command skipstress hammers a skip hash with a mixed workload while
// continuously auditing correctness evidence: per-key linearization
// balances, range-query snapshot sanity, and (at the end) the full
// structural invariant check including deferred-reclamation drainage.
// It is the repository's long-running confidence tool; CI runs the same
// checks in miniature through the test suite.
//
// With -check it instead records invoke/return histories of a seeded
// workload in rounds and verifies each round online against the
// sequential ordered-map model with the internal/linearize checker,
// exiting nonzero with the offending partition and a reproducer seed on
// any violation.
//
// With -churn it runs the handle-lifecycle stress: sustained
// insert/remove churn through pooled convenience handles and constantly
// recreated explicit handles (background maintenance enabled), with a
// periodic stop-the-world garbage audit asserting the handle registry
// stays bounded and a quiesced level-0 walk holds no logically-deleted
// stitched node.
//
// With -net it serves a sharded map over loopback TCP (internal/server)
// and drives the -check workload through real protocol clients
// (skiphash/client), verifying the client-observed histories — wire
// codec, pipelined request coalescing and all — against the sequential
// model, then audits the served map's invariants. Adding -namespaces n
// makes the same server host n byte-string namespaces, each driven
// concurrently by its own seeded workload through the v2 ops (int64
// keys crossing the wire as 8-byte big-endian strings) and checked
// against its own sequential model.
//
// With -resize it runs the online-resharding stress: the -check
// workload on a sharded map while a background resizer walks a seeded
// schedule of shard counts, so every verified history spans live grow
// and shrink migrations (-isolated covers the per-shard-runtime
// cutover path; -shards sets the initial count).
//
// With -crash it runs the durability stress: -cycles kill/recover
// rounds against one durability directory, alternating (a) concurrent
// FsyncAlways rounds killed at a random operation count and audited for
// exact equality against a shadow model (acknowledged operations may
// never be lost), and (b) single-writer FsyncNone rounds killed with a
// torn WAL tail and audited for exact-prefix recovery (the recovered
// state must equal the shadow after some prefix of the round's
// operations, no shorter than the last explicit Sync). Any divergence
// exits 1 with a reproducer line.
//
// With -replica it runs the replicated serving stress: a durable
// primary streaming its WAL (internal/repl) to two live in-process
// replicas, with the -check workload driven through a protocol client
// whose lookups alternate primary reads and watermark-barriered
// replica reads (GetAt). Halfway through, the primary is killed and a
// caught-up replica is promoted over the wire; the workload then
// continues against the promoted node only — post-promotion stamps are
// floored above everything applied, but stamps are only comparable
// within one primary lineage, so the other replica is dropped. Every
// round's client-observed history must linearize across the failover.
//
// All randomness derives from -seed, so any reported failure can be
// replayed by re-running with the printed flags. The reproducer line
// is rebuilt from the flag set itself (explicitly-set flags plus the
// pinned workload determinants), not from a hand-maintained format.
//
// Usage:
//
//	skipstress [-threads n] [-duration d] [-universe n] [-mode two-path|fast|slow]
//	           [-shards n] [-isolated] [-seed n] [-check] [-churn] [-crash] [-cycles n]
//	           [-net] [-namespaces n] [-replica] [-resize] [-readheavy] [-metrics-dump]
//
// -readheavy skews the -check/-net workload to 80% point lookups, the
// mix that keeps the optimistic read fast path hot while concurrent
// writers force fallbacks — the adversity the fast path's
// linearizability is checked under.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/skiphash"
)

// reproducerLine rebuilds the command line that replays this run from
// the flag set itself: every flag the user set explicitly (flag.Visit)
// plus the always-pinned workload determinants — seed, threads,
// duration, universe, and cycles under -crash — whose defaults
// (GOMAXPROCS, for one) vary by machine. Deriving the line from the
// registered flags keeps it honest as flags are added; the old
// hand-maintained format strings silently dropped newcomers.
func reproducerLine() string {
	pinned := map[string]bool{"seed": true, "threads": true, "duration": true, "universe": true}
	if f := flag.Lookup("crash"); f != nil && f.Value.String() == "true" {
		pinned["cycles"] = true
	}
	if f := flag.Lookup("net"); f != nil && f.Value.String() == "true" {
		// The namespace count determines the multi-tenant workload split,
		// so -net reproducer lines carry it even at its default.
		pinned["namespaces"] = true
	}
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var b strings.Builder
	b.WriteString("go run ./cmd/skipstress")
	flag.VisitAll(func(f *flag.Flag) {
		if set[f.Name] || pinned[f.Name] {
			fmt.Fprintf(&b, " -%s=%v", f.Name, f.Value)
		}
	})
	return b.String()
}

// stressMap is the common face of the unsharded and sharded skip hash
// that the stress loop needs.
type stressMap interface {
	Lookup(k int64) (int64, bool)
	Insert(k, v int64) bool
	Remove(k int64) bool
	Quiesce()
	CheckInvariants(skiphash.CheckOptions) error
	RangeStats() skiphash.RangeStats
	HandleCount() int
	StitchedSlow() int
	SizeSlow() int
	MaintenanceStats() skiphash.MaintenanceStats
	Close()
}

// stressHandle is the per-worker face; both skiphash.Handle and
// skiphash.ShardedHandle satisfy it.
type stressHandle interface {
	Insert(k, v int64) bool
	Remove(k int64) bool
	Lookup(k int64) (int64, bool)
	Range(l, r int64, out []skiphash.Pair[int64, int64]) []skiphash.Pair[int64, int64]
	Close()
}

// maxFailurePrints caps per-failure output so a systemic bug cannot
// drown the summary (and the reproducer line) in millions of lines.
const maxFailurePrints = 20

func main() {
	var (
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "worker goroutines")
		duration  = flag.Duration("duration", 5*time.Second, "stress duration")
		universe  = flag.Int64("universe", 1<<16, "key universe")
		mode      = flag.String("mode", "two-path", "range path: two-path, fast, or slow")
		rangeLen  = flag.Int64("rangelen", 128, "range query length")
		shards    = flag.Int("shards", 0, "shard count (0 = unsharded; -1 = GOMAXPROCS-derived)")
		isolated  = flag.Bool("isolated", false, "per-shard STM runtimes (with -shards)")
		seed      = flag.Uint64("seed", 1, "seed for all workload randomness")
		check     = flag.Bool("check", false, "record histories and verify linearizability online")
		churn     = flag.Bool("churn", false, "handle-lifecycle churn with periodic garbage audits")
		crash     = flag.Bool("crash", false, "durability kill/recover cycles audited against a shadow model")
		netCheck  = flag.Bool("net", false, "serve over loopback TCP and check client-side linearizability")
		nsCount   = flag.Int("namespaces", 0, "with -net: drive this many byte-string namespaces concurrently through the checker")
		replica   = flag.Bool("replica", false, "replicated serving stress: barriered replica reads, then kill the primary and promote")
		resizeChk = flag.Bool("resize", false, "live shard-count resizes under the -check workload and linearizability checker")
		cycles    = flag.Int("cycles", 60, "kill/recover cycles for -crash")
		dir       = flag.String("dir", "", "durability directory for -crash (default: a temp dir)")
		readHeavy = flag.Bool("readheavy", false, "80% point-lookup mix for -check/-net (drives the read fast path)")
		metrics   = flag.Bool("metrics-dump", false, "print the map's counters as a Prometheus exposition at end of run (in-process modes)")
	)
	flag.Parse()

	modes := 0
	for _, on := range []bool{*check, *churn, *crash, *netCheck, *replica, *resizeChk} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "skipstress: -check, -churn, -crash, -net, -replica and -resize are mutually exclusive")
		os.Exit(2)
	}
	reproducer := reproducerLine()
	if *crash {
		runCrash(*cycles, *threads, *universe, *seed, *dir, reproducer)
		return
	}
	lookupPct := 0
	if *readHeavy {
		lookupPct = 80
	}
	if *nsCount > 0 && !*netCheck {
		fmt.Fprintln(os.Stderr, "skipstress: -namespaces requires -net")
		os.Exit(2)
	}
	if *netCheck {
		if *nsCount > 0 {
			runNetNamespaces(*threads, *duration, *seed, *shards, *isolated, *nsCount, lookupPct, reproducer)
		} else {
			runNet(*threads, *duration, *seed, *shards, *isolated, lookupPct, reproducer)
		}
		return
	}
	if *replica {
		runReplica(*threads, *duration, *seed, lookupPct, reproducer)
		return
	}
	if *resizeChk {
		runResize(*threads, *duration, *seed, *shards, *isolated, lookupPct, reproducer)
		return
	}
	cfg := skiphash.Config{}
	if *churn {
		cfg.Maintenance = true
	}
	switch *mode {
	case "fast":
		cfg.FastOnly = true
	case "slow":
		cfg.SlowOnly = true
	case "two-path":
	default:
		fmt.Fprintf(os.Stderr, "skipstress: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var m stressMap
	var newHandle func() stressHandle
	var checkable maptest.OrderedMap
	variant := "unsharded"
	if *shards != 0 {
		if *shards > 0 {
			cfg.Shards = *shards
		}
		cfg.IsolatedShards = *isolated
		sm := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
		m = sm
		newHandle = func() stressHandle { return sm.NewHandle() }
		checkable = shardedCheckAdapter{sm}
		variant = fmt.Sprintf("%d shards", sm.NumShards())
		if *isolated {
			variant += " (isolated)"
		}
	} else {
		um := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
		m = um
		newHandle = func() stressHandle { return um.NewHandle() }
		checkable = checkAdapter{um}
	}

	if *metrics {
		defer dumpMetrics(m)
	}
	if *check {
		runCheck(checkable, m, *threads, *duration, *seed, *isolated, lookupPct, variant, reproducer)
		return
	}
	if *churn {
		handleWeight := 1
		if sm, ok := m.(*skiphash.Sharded[int64, int64]); ok {
			handleWeight = sm.NumShards() + 1
		}
		runChurn(m, newHandle, *threads, handleWeight, *duration, *universe, *seed, variant, reproducer)
		return
	}

	fmt.Printf("skipstress: %d threads, %v, universe %d, mode %s, seed %d, %s\n",
		*threads, *duration, *universe, *mode, *seed, variant)

	perKey := make([]atomic.Int64, *universe)
	var ops, ranges, failures atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < *threads; t++ {
		wg.Add(1)
		go func(worker uint64) {
			defer wg.Done()
			h := newHandle()
			rng := rand.New(rand.NewPCG(*seed, worker^0x5eed))
			var buf []skiphash.Pair[int64, int64]
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < 32; i++ {
					k := int64(rng.Uint64() % uint64(*universe))
					switch rng.Uint64() % 8 {
					case 0, 1, 2:
						if h.Insert(k, k) {
							perKey[k].Add(1)
						}
					case 3, 4, 5:
						if h.Remove(k) {
							perKey[k].Add(-1)
						}
					case 6:
						if v, ok := h.Lookup(k); ok && v != k {
							if failures.Add(1) <= maxFailurePrints {
								fmt.Fprintf(os.Stderr, "FAIL: Lookup(%d) = %d\n", k, v)
							}
						}
					case 7:
						buf = h.Range(k, k+*rangeLen, buf[:0])
						last := int64(-1)
						for _, p := range buf {
							if p.Key < k || p.Key > k+*rangeLen || p.Key <= last || p.Val != p.Key {
								if failures.Add(1) <= maxFailurePrints {
									fmt.Fprintf(os.Stderr, "FAIL: bad range pair %+v in [%d,%d]\n",
										p, k, k+*rangeLen)
								}
								break
							}
							last = p.Key
						}
						ranges.Add(1)
					}
					ops.Add(1)
				}
			}
		}(uint64(t) + 1)
	}
	time.Sleep(*duration)
	close(done)
	wg.Wait()

	// Post-quiescence audits.
	m.Quiesce()
	bad := 0
	for k := int64(0); k < *universe; k++ {
		balance := perKey[k].Load()
		_, present := m.Lookup(k)
		want := int64(0)
		if present {
			want = 1
		}
		if balance != want {
			if bad < maxFailurePrints {
				fmt.Fprintf(os.Stderr, "FAIL: key %d balance %d present %v\n", k, balance, present)
			}
			bad++
		}
	}
	if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: invariants: %v\n", err)
		bad++
	}
	s := m.RangeStats()
	fmt.Printf("ops=%d ranges=%d fast=%d slow=%d fast-aborts=%d\n",
		ops.Load(), ranges.Load(), s.FastCommits, s.SlowCommits, s.FastAborts)
	if bad > 0 || failures.Load() > 0 {
		fmt.Fprintf(os.Stderr, "skipstress: FAILED (%d balance errors, %d online failures)\n",
			bad, failures.Load())
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	fmt.Println("skipstress: PASS")
}

// runChurn is the handle-lifecycle stress: workers alternate between
// pooled convenience traffic and short-lived explicit handles (closed
// after a fixed op budget), with background maintenance on, while a
// periodic stop-the-world audit quiesces the map and asserts (a) the
// handle registry is bounded by the live workers, and (b) a full
// level-0 walk holds no logically-deleted stitched node. Any audit
// failure exits 1 with a reproducer line.
func runChurn(m stressMap, newHandle func() stressHandle, threads, handleWeight int,
	duration time.Duration, universe int64, seed uint64, variant, reproducer string) {
	fmt.Printf("skipstress: -churn, %d threads, %v, universe %d, seed %d, %s\n",
		threads, duration, universe, seed, variant)

	const handleTurnoverOps = 512
	var world sync.RWMutex
	var ops, turnovers atomic.Uint64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(worker uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, worker^0xc40e))
			var h stressHandle
			hOps := 0
			for {
				select {
				case <-done:
					if h != nil {
						h.Close()
					}
					return
				default:
				}
				world.RLock()
				for i := 0; i < 64; i++ {
					k := int64(rng.Uint64() % uint64(universe))
					if h == nil {
						if rng.Uint64()&1 == 0 {
							m.Insert(k, k)
						} else {
							m.Remove(k)
						}
					} else {
						if rng.Uint64()&1 == 0 {
							h.Insert(k, k)
						} else {
							h.Remove(k)
						}
						hOps++
					}
					ops.Add(1)
				}
				if h == nil && rng.Uint64()%4 == 0 {
					h = newHandle()
					hOps = 0
				} else if h != nil && hOps >= handleTurnoverOps {
					h.Close()
					h = nil
					turnovers.Add(1)
				}
				world.RUnlock()
			}
		}(uint64(t) + 1)
	}

	audit := func(label string) bool {
		world.Lock()
		defer world.Unlock()
		m.Quiesce()
		ok := true
		if got, bound := m.HandleCount(), threads*handleWeight; got > bound {
			fmt.Fprintf(os.Stderr, "FAIL (%s): handle registry %d exceeds bound %d\n", label, got, bound)
			ok = false
		}
		if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
			fmt.Fprintf(os.Stderr, "FAIL (%s): %d logically-deleted nodes still stitched after quiesce\n",
				label, stitched-live)
			ok = false
		}
		if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL (%s): invariants: %v\n", label, err)
			ok = false
		}
		return ok
	}

	auditEvery := duration / 8
	if auditEvery < 250*time.Millisecond {
		auditEvery = 250 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	audits, failed := 0, false
	for time.Now().Before(deadline) {
		sleep := auditEvery
		if rem := time.Until(deadline); rem < sleep {
			sleep = rem
		}
		time.Sleep(sleep)
		audits++
		if !audit(fmt.Sprintf("audit %d", audits)) {
			failed = true
			break
		}
	}
	close(done)
	wg.Wait()
	if !failed && !audit("final") {
		failed = true
	}
	m.Close()
	if stitched, live := m.StitchedSlow(), m.SizeSlow(); stitched != live {
		fmt.Fprintf(os.Stderr, "FAIL: %d logically-deleted nodes stitched after Close\n", stitched-live)
		failed = true
	}
	ms := m.MaintenanceStats()
	fmt.Printf("ops=%d handle-turnovers=%d audits=%d orphaned=%d adopted=%d drained=%d batches=%d wakeups=%d\n",
		ops.Load(), turnovers.Load(), audits, ms.Orphaned, ms.Adopted, ms.DrainedNodes, ms.DrainBatches, ms.Wakeups)
	if failed {
		fmt.Fprintf(os.Stderr, "skipstress: FAILED\nreproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	fmt.Println("skipstress: PASS")
}

// runCheck records seeded workload rounds and verifies each round's
// history online. The map stays hot across rounds: each round's check
// starts from a quiescent snapshot of the previous round's final state.
func runCheck(cm maptest.OrderedMap, m stressMap, threads int, duration time.Duration,
	seed uint64, isolated bool, lookupPct int, variant, reproducer string) {
	const checkUniverse = 64
	fmt.Printf("skipstress: -check, %d threads, %v, universe %d, seed %d, lookup%%=%d, %s\n",
		threads, duration, checkUniverse, seed, lookupPct, variant)

	deadline := time.Now().Add(duration)
	rounds, totalOps, unknowns := 0, 0, 0
	var snapshot []linearize.KV
	for time.Now().Before(deadline) {
		roundSeed := seed + uint64(rounds)*1_000_003
		opts := maptest.WorkloadOptions{
			Clients:      threads,
			OpsPerClient: 192,
			Universe:     checkUniverse,
			Seed:         roundSeed,
			Ranges:       !isolated,
			PointQueries: !isolated,
			Batches:      true,
			LookupPct:    lookupPct,
		}
		h := maptest.RecordHistory(cm, opts)
		res := linearize.CheckOpts(h, linearize.Options{Initial: snapshot})
		totalOps += len(h)
		if res.Unknown {
			unknowns++
		} else if !res.Ok {
			fmt.Fprintf(os.Stderr, "FAIL: non-linearizable history in round %d (round seed %d), partition keys %v:\n%s",
				rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
		// Workers joined inside RecordHistory, so the map is quiescent:
		// snapshot the state the next round starts from.
		snapshot = cm.Range(0, checkUniverse, nil)
		rounds++
	}
	m.Quiesce()
	if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: invariants after %d rounds: %v\n", rounds, err)
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	fmt.Printf("rounds=%d ops=%d unknown=%d\n", rounds, totalOps, unknowns)
	fmt.Println("skipstress: PASS")
}

// checkAdapter exposes the unsharded map through the conformance
// interface for -check.
type checkAdapter struct {
	m *skiphash.Map[int64, int64]
}

func (a checkAdapter) Lookup(k int64) (int64, bool) { return a.m.Lookup(k) }
func (a checkAdapter) Insert(k, v int64) bool       { return a.m.Insert(k, v) }
func (a checkAdapter) Remove(k int64) bool          { return a.m.Remove(k) }

func (a checkAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	for _, p := range a.m.Range(l, r, nil) {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a checkAdapter) Ceil(k int64) (int64, int64, bool)  { return a.m.Ceil(k) }
func (a checkAdapter) Floor(k int64) (int64, int64, bool) { return a.m.Floor(k) }
func (a checkAdapter) Succ(k int64) (int64, int64, bool)  { return a.m.Succ(k) }
func (a checkAdapter) Pred(k int64) (int64, int64, bool)  { return a.m.Pred(k) }

func (a checkAdapter) Batch(steps []linearize.Step) bool {
	return a.m.Atomic(func(op *skiphash.Txn[int64, int64]) error {
		linearize.ApplySteps(steps, op.Insert, op.Remove, op.Lookup)
		return nil
	}) == nil
}

// shardedCheckAdapter is checkAdapter's sharded twin.
type shardedCheckAdapter struct {
	s *skiphash.Sharded[int64, int64]
}

func (a shardedCheckAdapter) Lookup(k int64) (int64, bool) { return a.s.Lookup(k) }
func (a shardedCheckAdapter) Insert(k, v int64) bool       { return a.s.Insert(k, v) }
func (a shardedCheckAdapter) Remove(k int64) bool          { return a.s.Remove(k) }

func (a shardedCheckAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	for _, p := range a.s.Range(l, r, nil) {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

func (a shardedCheckAdapter) Ceil(k int64) (int64, int64, bool)  { return a.s.Ceil(k) }
func (a shardedCheckAdapter) Floor(k int64) (int64, int64, bool) { return a.s.Floor(k) }
func (a shardedCheckAdapter) Succ(k int64) (int64, int64, bool)  { return a.s.Succ(k) }
func (a shardedCheckAdapter) Pred(k int64) (int64, int64, bool)  { return a.s.Pred(k) }

func (a shardedCheckAdapter) Batch(steps []linearize.Step) bool {
	return a.s.Atomic(func(op *skiphash.ShardedTxn[int64, int64]) error {
		linearize.ApplySteps(steps, op.Insert, op.Remove, op.Lookup)
		return nil
	}) == nil
}

// dumpMetrics renders the map's counters as a Prometheus text
// exposition on stderr after a run (in-process modes; failure paths
// exit before the deferred dump runs — the counters matter when the
// run passed). It builds the registry at dump time from the same
// Stats() accessors the daemon exposes, so a stress run and a served
// run read identically.
func dumpMetrics(m stressMap) {
	reg := obs.NewRegistry()
	var st stm.Stats
	switch v := m.(type) {
	case interface{ STMStats() stm.Stats }: // sharded (aggregates isolated runtimes)
		st = v.STMStats()
	case interface{ Runtime() *stm.Runtime }: // unsharded
		st = v.Runtime().Stats()
	}
	{
		reg.CounterFunc("skiphash_stm_commits_total", "Committed transactions.",
			func() uint64 { return st.Commits })
		reg.CounterFunc("skiphash_stm_readonly_commits_total", "Committed read-only transactions.",
			func() uint64 { return st.ReadOnlyCommits })
		reg.CounterFunc("skiphash_stm_aborts_total", "Rolled-back attempts by reason.",
			func() uint64 { return st.AbortsValidate }, obs.Label{Key: "reason", Value: "validate"})
		reg.CounterFunc("skiphash_stm_aborts_total", "Rolled-back attempts by reason.",
			func() uint64 { return st.AbortsAcquire }, obs.Label{Key: "reason", Value: "acquire"})
		reg.CounterFunc("skiphash_stm_aborts_total", "Rolled-back attempts by reason.",
			func() uint64 { return st.AbortsInjected }, obs.Label{Key: "reason", Value: "injected"})
		reg.CounterFunc("skiphash_stm_backoff_nanoseconds_total", "Wall time spent in contention backoff.",
			func() uint64 { return st.BackoffNanos })
		reg.CounterFunc("skiphash_stm_fastread_hits_total", "Optimistic fast-path read hits.",
			func() uint64 { return st.FastReadHits })
		reg.CounterFunc("skiphash_stm_fastread_fallbacks_total", "Fast-path reads that fell back to a transaction.",
			func() uint64 { return st.FastReadFallbacks })
	}
	ms := m.MaintenanceStats()
	reg.CounterFunc("skiphash_core_orphaned_total", "Nodes handed to the orphan queues.",
		func() uint64 { return ms.Orphaned })
	reg.CounterFunc("skiphash_core_adopted_total", "Orphaned nodes adopted for reclamation.",
		func() uint64 { return ms.Adopted })
	reg.CounterFunc("skiphash_core_drained_nodes_total", "Logically deleted nodes unstitched.",
		func() uint64 { return ms.DrainedNodes })
	rs := m.RangeStats()
	reg.CounterFunc("skiphash_core_range_fast_attempts_total", "Fast-path range attempts.",
		func() uint64 { return rs.FastAttempts })
	reg.CounterFunc("skiphash_core_range_fast_aborts_total", "Fast-path range aborts.",
		func() uint64 { return rs.FastAborts })
	reg.CounterFunc("skiphash_core_range_slow_commits_total", "Slow-path range commits.",
		func() uint64 { return rs.SlowCommits })
	fmt.Fprintln(os.Stderr, "skipstress: end-of-run metrics:")
	reg.WriteTo(os.Stderr)
}
