package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"

	"repro/skiphash"
)

// The -crash stress: one durability directory lives through many
// kill/recover cycles while an in-memory shadow model tracks what must
// survive. Two cycle flavors alternate:
//
//   - "always": FsyncAlways with concurrent workers on partitioned
//     keys, killed (SimulateCrash — the user-space buffer is dropped,
//     nothing further is fsynced) after a random number of operations.
//     Every acknowledged operation is durable by contract, so the
//     recovered map must equal the shadow exactly. Zero tolerance.
//   - "torn": FsyncNone with a single writer, killed with a torn WAL
//     tail (SimulateTornCrash cuts a random number of bytes, possibly
//     mid-record). The single writer makes the log a strict journal, so
//     the recovered state must equal the shadow after some prefix of
//     the cycle's operations — and at least the prefix covered by the
//     cycle's one explicit Sync. Anything else is divergence.
//
// Every few cycles a mid-cycle Snapshot exercises truncation under
// load, and every sixth "always" cycle ends in a clean Close instead
// of a kill, so flush-on-Close recovery is audited on the same
// directory as the crash paths.
type shadowCell struct {
	v  int64
	ok bool
}

func runCrash(cycles, threads int, universe int64, seed uint64, dir, reproducer string) {
	if cycles < 1 {
		cycles = 1
	}
	if threads < 1 {
		threads = 1
	}
	if universe > 1<<10 {
		universe = 1 << 10 // keep the per-op journal copies cheap; depth comes from cycles
	}
	if int64(threads) > universe {
		threads = int(universe) // every worker needs a nonempty key partition
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "skipstress-crash-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "skipstress:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		// The shadow model starts empty, so a directory with recovered
		// state would fail the cycle-0 audit spuriously — and deleting a
		// user-named directory is not this tool's call. Refuse instead.
		if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			fmt.Fprintf(os.Stderr, "skipstress: -dir %s is not empty; -crash needs a fresh directory\n", dir)
			os.Exit(2)
		}
	}
	fmt.Printf("skipstress: -crash, %d cycles, %d threads, universe %d, seed %d, dir %s\n",
		cycles, threads, universe, seed, dir)

	shadow := make([]shadowCell, universe)
	rng := rand.New(rand.NewPCG(seed, 0xdead))
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}

	totalOps := 0
	for cycle := 0; cycle < cycles; cycle++ {
		torn := cycle%2 == 1
		fsync := skiphash.FsyncAlways
		if torn {
			fsync = skiphash.FsyncNone
		}
		cfg := skiphash.Config{Durability: &skiphash.Durability{
			Dir:           dir,
			Fsync:         fsync,
			SegmentBytes:  1 << 16,
			SnapshotBytes: -1, // snapshots only where the stress places them
		}}
		m, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
		if err != nil {
			fail("cycle %d: recovery failed: %v", cycle, err)
		}
		// Entry audit: recovery must reproduce the shadow exactly (every
		// previous cycle ended at a point the shadow reflects).
		auditEqual(m, shadow, func(format string, args ...any) {
			fail("cycle %d entry: "+format, append([]any{cycle}, args...)...)
		})

		if torn {
			totalOps += crashCycleTorn(m, shadow, universe, rng, cycle, fail)
		} else {
			clean := cycle%6 == 4 // this cycle ends in Close, not a kill
			totalOps += crashCycleAlways(m, shadow, universe, threads, rng, cycle, clean, fail)
		}
		m.Close()
	}

	// Final clean reopen.
	cfg := skiphash.Config{Durability: &skiphash.Durability{Dir: dir}}
	m, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		fail("final recovery: %v", err)
	}
	auditEqual(m, shadow, fail)
	m.Close()
	fmt.Printf("cycles=%d ops=%d\n", cycles, totalOps)
	fmt.Println("skipstress: PASS")
}

// auditEqual compares the recovered map against the shadow cell by
// cell.
func auditEqual(m *skiphash.Map[int64, int64], shadow []shadowCell, fail func(string, ...any)) {
	for k := range shadow {
		v, ok := m.Lookup(int64(k))
		if ok != shadow[k].ok || (ok && v != shadow[k].v) {
			fail("key %d: recovered (%d,%v), shadow (%d,%v)", k, v, ok, shadow[k].v, shadow[k].ok)
		}
	}
}

// crashCycleAlways runs concurrent workers on partitioned keys (worker
// w owns keys ≡ w mod threads, so each shadow cell has one writer) and
// kills the store after a random operation budget — or, when clean is
// set, leaves the kill out so the caller's Close performs a clean
// flush-and-shutdown. FsyncAlways means an operation that returned is
// durable; workers stop at an operation boundary, so either way the
// recovered state must equal the shadow exactly.
func crashCycleAlways(m *skiphash.Map[int64, int64], shadow []shadowCell, universe int64,
	threads int, rng *rand.Rand, cycle int, clean bool, fail func(string, ...any)) int {
	opsPerWorker := 100 + int(rng.Uint64()%400)
	snapshotAt := -1
	if rng.Uint64()%4 == 0 {
		snapshotAt = rng.IntN(opsPerWorker)
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int, wseed uint64) {
			defer wg.Done()
			wrng := rand.New(rand.NewPCG(wseed, uint64(w)))
			h := m.NewHandle()
			defer h.Close()
			for i := 0; i < opsPerWorker; i++ {
				k := (int64(wrng.Uint64()%uint64(universe))/int64(threads))*int64(threads) + int64(w)
				if k >= universe {
					k -= int64(threads)
				}
				if w == 0 && i == snapshotAt {
					if err := m.Snapshot(); err != nil {
						fail("cycle %d: snapshot under load: %v", cycle, err)
					}
				}
				v := int64(cycle*1_000_000 + i)
				if wrng.Uint64()&1 == 0 {
					if h.Insert(k, v) {
						shadow[k] = shadowCell{v: v, ok: true}
					}
				} else {
					if h.Remove(k) {
						shadow[k] = shadowCell{}
					}
				}
			}
		}(w, rng.Uint64())
	}
	wg.Wait()
	if clean {
		// Clean shutdown path: the caller's Close flushes and fsyncs.
		return opsPerWorker * threads
	}
	// Kill: with FsyncAlways every acknowledged op is already on disk,
	// so dropping the buffers must lose nothing.
	if err := m.SimulateCrash(); err != nil {
		fail("cycle %d: SimulateCrash: %v", cycle, err)
	}
	return opsPerWorker * threads
}

// crashCycleTorn runs a single writer, journals every operation with
// the shadow state after it, kills the store with a torn tail, and
// leaves the prefix audit to the next cycle's recovery — performed here
// immediately by reopening read-only would double Open paths, so the
// audit runs now against a fresh recovery, and the shadow is rolled
// back to the surviving prefix for the cycles that follow.
func crashCycleTorn(m *skiphash.Map[int64, int64], shadow []shadowCell, universe int64,
	rng *rand.Rand, cycle int, fail func(string, ...any)) int {
	ops := 200 + int(rng.Uint64()%600)
	syncAt := rng.IntN(ops)
	// states[i] is the shadow after i operations of this cycle.
	states := make([][]shadowCell, 0, ops+1)
	cur := append([]shadowCell(nil), shadow...)
	states = append(states, append([]shadowCell(nil), cur...))
	minSurvive := 0
	for i := 0; i < ops; i++ {
		k := int64(rng.Uint64() % uint64(universe))
		v := int64(cycle*1_000_000 + i)
		if rng.Uint64()&1 == 0 {
			if m.Insert(k, v) {
				cur[k] = shadowCell{v: v, ok: true}
			}
		} else {
			if m.Remove(k) {
				cur[k] = shadowCell{}
			}
		}
		states = append(states, append([]shadowCell(nil), cur...))
		if i == syncAt {
			if err := m.Sync(); err != nil {
				fail("cycle %d: Sync: %v", cycle, err)
			}
			minSurvive = i + 1
		}
	}
	torn, ok := m.Persister().(interface{ SimulateTornCrash(int64) error })
	if !ok {
		fail("cycle %d: persister exposes no SimulateTornCrash", cycle)
	}
	if err := torn.SimulateTornCrash(int64(rng.Uint64() % 512)); err != nil {
		fail("cycle %d: SimulateTornCrash: %v", cycle, err)
	}

	// Recover immediately and find which prefix survived.
	cfg := skiphash.Config{Durability: &skiphash.Durability{Dir: m.Config().Durability.Dir}}
	r, err := skiphash.Open[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		fail("cycle %d: recovery after torn crash: %v", cycle, err)
	}
	recovered := make([]shadowCell, universe)
	for k := int64(0); k < universe; k++ {
		if v, ok := r.Lookup(k); ok {
			recovered[k] = shadowCell{v: v, ok: true}
		}
	}
	r.Close()
	match := -1
	for n := len(states) - 1; n >= 0; n-- {
		if equalShadow(recovered, states[n]) {
			match = n
			break
		}
	}
	if match < 0 {
		fail("cycle %d: torn recovery matches no prefix of the %d-op journal", cycle, ops)
	}
	if match < minSurvive {
		fail("cycle %d: torn recovery lost synced operations: prefix %d < synced %d", cycle, match, minSurvive)
	}
	copy(shadow, states[match])
	return ops
}

func equalShadow(a, b []shadowCell) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
