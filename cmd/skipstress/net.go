package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// runNet is the serving-layer stress: it starts an in-process server
// around a sharded skip hash, drives the seeded -check workload through
// real protocol clients over loopback TCP, and verifies the client-side
// invoke/return histories against the sequential ordered-map model with
// internal/linearize — so the wire codec, the per-connection batcher's
// coalesced transactions, and response demultiplexing are all inside
// the checked box. After the rounds, the served map itself must pass a
// quiescent invariant audit.
func runNet(threads int, duration time.Duration, seed uint64,
	shards int, isolated bool, lookupPct int, reproducer string) {
	const checkUniverse = 64
	cfg := skiphash.Config{Maintenance: true, IsolatedShards: isolated}
	if shards > 0 {
		cfg.Shards = shards
	}
	m := skiphash.NewInt64Sharded[int64](cfg)
	srv := server.New(server.NewShardedBackend(m), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: listen: %v\n", err)
		os.Exit(1)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: threads})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: dial: %v\n", err)
		os.Exit(1)
	}
	variant := fmt.Sprintf("%d shards over tcp", m.NumShards())
	if isolated {
		variant += " (isolated)"
	}
	fmt.Printf("skipstress: -net, %d client conns, %v, universe %d, seed %d, lookup%%=%d, %s\n",
		threads, duration, checkUniverse, seed, lookupPct, variant)

	adapter := netAdapter{c: cl}
	deadline := time.Now().Add(duration)
	rounds, totalOps, unknowns := 0, 0, 0
	var snapshot []linearize.KV
	for time.Now().Before(deadline) {
		roundSeed := seed + uint64(rounds)*1_000_003
		opts := maptest.WorkloadOptions{
			Clients:      threads,
			OpsPerClient: 192,
			Universe:     checkUniverse,
			Seed:         roundSeed,
			// Isolated shards merge per-shard range snapshots taken at
			// distinct instants — deliberately not linearizable — so
			// ranges are only checked on the shared-runtime map.
			Ranges:    !isolated,
			Batches:   true,
			LookupPct: lookupPct,
		}
		h := maptest.RecordHistory(adapter, opts)
		res := linearize.CheckOpts(h, linearize.Options{Initial: snapshot})
		totalOps += len(h)
		if res.Unknown {
			unknowns++
		} else if !res.Ok {
			fmt.Fprintf(os.Stderr, "FAIL: non-linearizable served history in round %d (round seed %d), partition keys %v:\n%s",
				rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
		// Clients joined inside RecordHistory, so the served map is
		// quiescent: snapshot the state the next round starts from,
		// through the wire like everything else.
		pairs, err := cl.Range(0, checkUniverse, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: snapshot range: %v\n", err)
			os.Exit(1)
		}
		snapshot = snapshot[:0]
		for _, p := range pairs {
			snapshot = append(snapshot, linearize.KV{Key: p.Key, Val: p.Val})
		}
		rounds++
	}

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: server drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-served; err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: serve: %v\n", err)
		os.Exit(1)
	}
	m.Quiesce()
	if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: served map invariants after %d rounds: %v\n", rounds, err)
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	m.Close()
	fmt.Printf("rounds=%d ops=%d unknown=%d\n", rounds, totalOps, unknowns)
	fmt.Println("skipstress: PASS")
}

// netAdapter exposes a protocol client through the conformance
// interface, so the recorded history is exactly what network callers
// observed. Transport errors are fatal: the stress tool's subject is a
// loopback server in the same process, where any failure is a bug.
type netAdapter struct {
	c *client.Client
}

func (a netAdapter) fatal(op string, err error) {
	fmt.Fprintf(os.Stderr, "skipstress: transport failure during %s: %v\n", op, err)
	os.Exit(1)
}

func (a netAdapter) Lookup(k int64) (int64, bool) {
	v, ok, err := a.c.Get(k)
	if err != nil {
		a.fatal("Get", err)
	}
	return v, ok
}

func (a netAdapter) Insert(k, v int64) bool {
	ok, err := a.c.Insert(k, v)
	if err != nil {
		a.fatal("Insert", err)
	}
	return ok
}

func (a netAdapter) Remove(k int64) bool {
	ok, err := a.c.Remove(k)
	if err != nil {
		a.fatal("Remove", err)
	}
	return ok
}

func (a netAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	pairs, err := a.c.Range(l, r, 0)
	if err != nil {
		a.fatal("Range", err)
	}
	for _, p := range pairs {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

// Batch implements maptest.Batcher over the wire's atomic batch op.
func (a netAdapter) Batch(steps []linearize.Step) bool {
	ws := make([]wire.Step, len(steps))
	for i, s := range steps {
		switch s.Kind {
		case linearize.Insert:
			ws[i] = wire.Step{Kind: wire.StepInsert, Key: s.Key, Val: s.Val}
		case linearize.Remove:
			ws[i] = wire.Step{Kind: wire.StepRemove, Key: s.Key}
		case linearize.Lookup:
			ws[i] = wire.Step{Kind: wire.StepLookup, Key: s.Key}
		}
	}
	results, err := a.c.Atomic(ws)
	if errors.Is(err, client.ErrCrossShard) {
		return false // rejected wholesale, no trace to linearize
	}
	if err != nil {
		a.fatal("Atomic", err)
	}
	if len(results) != len(steps) {
		a.fatal("Atomic", fmt.Errorf("%d results for %d steps", len(results), len(steps)))
	}
	for i := range steps {
		steps[i].Ok = results[i].Ok
		steps[i].Out = results[i].Out
	}
	return true
}
