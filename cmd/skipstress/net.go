package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// runNet is the serving-layer stress: it starts an in-process server
// around a sharded skip hash, drives the seeded -check workload through
// real protocol clients over loopback TCP, and verifies the client-side
// invoke/return histories against the sequential ordered-map model with
// internal/linearize — so the wire codec, the per-connection batcher's
// coalesced transactions, and response demultiplexing are all inside
// the checked box. After the rounds, the served map itself must pass a
// quiescent invariant audit.
func runNet(threads int, duration time.Duration, seed uint64,
	shards int, isolated bool, lookupPct int, reproducer string) {
	const checkUniverse = 64
	cfg := skiphash.Config{Maintenance: true, IsolatedShards: isolated}
	if shards > 0 {
		cfg.Shards = shards
	}
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	srv := server.New(server.NewShardedBackend(m), server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: listen: %v\n", err)
		os.Exit(1)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: threads})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: dial: %v\n", err)
		os.Exit(1)
	}
	variant := fmt.Sprintf("%d shards over tcp", m.NumShards())
	if isolated {
		variant += " (isolated)"
	}
	fmt.Printf("skipstress: -net, %d client conns, %v, universe %d, seed %d, lookup%%=%d, %s\n",
		threads, duration, checkUniverse, seed, lookupPct, variant)

	adapter := netAdapter{c: cl}
	deadline := time.Now().Add(duration)
	rounds, totalOps, unknowns := 0, 0, 0
	var snapshot []linearize.KV
	for time.Now().Before(deadline) {
		roundSeed := seed + uint64(rounds)*1_000_003
		opts := maptest.WorkloadOptions{
			Clients:      threads,
			OpsPerClient: 192,
			Universe:     checkUniverse,
			Seed:         roundSeed,
			// Isolated shards merge per-shard range snapshots taken at
			// distinct instants — deliberately not linearizable — so
			// ranges are only checked on the shared-runtime map.
			Ranges:    !isolated,
			Batches:   true,
			LookupPct: lookupPct,
		}
		h := maptest.RecordHistory(adapter, opts)
		res := linearize.CheckOpts(h, linearize.Options{Initial: snapshot})
		totalOps += len(h)
		if res.Unknown {
			unknowns++
		} else if !res.Ok {
			fmt.Fprintf(os.Stderr, "FAIL: non-linearizable served history in round %d (round seed %d), partition keys %v:\n%s",
				rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
		// Clients joined inside RecordHistory, so the served map is
		// quiescent: snapshot the state the next round starts from,
		// through the wire like everything else.
		pairs, err := cl.Range(0, checkUniverse, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL: snapshot range: %v\n", err)
			os.Exit(1)
		}
		snapshot = snapshot[:0]
		for _, p := range pairs {
			snapshot = append(snapshot, linearize.KV{Key: p.Key, Val: p.Val})
		}
		rounds++
	}

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: server drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-served; err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: serve: %v\n", err)
		os.Exit(1)
	}
	m.Quiesce()
	if err := m.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: served map invariants after %d rounds: %v\n", rounds, err)
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	m.Close()
	fmt.Printf("rounds=%d ops=%d unknown=%d\n", rounds, totalOps, unknowns)
	fmt.Println("skipstress: PASS")
}

// runNetNamespaces is the multi-tenant serving stress: one server hosts
// nsCount byte-string namespaces (plus the default int64 map), and each
// namespace is driven concurrently with its own seeded -check workload
// through the wire's v2 ops. Workload keys and values are int64s
// encoded as 8-byte big-endian strings — order-preserving for
// non-negative keys, so each namespace's client-observed history checks
// against the same sequential ordered-map model. The namespaces share
// the server's executor, connections, and coalescing, so the checker
// also audits that runs never bleed across namespace boundaries.
func runNetNamespaces(threads int, duration time.Duration, seed uint64,
	shards int, isolated bool, nsCount, lookupPct int, reproducer string) {
	const checkUniverse = 64
	mapCfg := skiphash.Config{Maintenance: true, IsolatedShards: isolated}
	if shards > 0 {
		mapCfg.Shards = shards
	}
	m := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, mapCfg)
	reg, err := server.NewRegistry(server.RegistryConfig{Map: mapCfg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: registry: %v\n", err)
		os.Exit(1)
	}
	srv := server.NewWithRegistry(server.NewShardedBackend(m), reg, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: listen: %v\n", err)
		os.Exit(1)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.Options{Conns: threads})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skipstress: dial: %v\n", err)
		os.Exit(1)
	}
	adapters := make([]nsAdapter, nsCount)
	for i := range adapters {
		ns, err := cl.CreateNamespace(fmt.Sprintf("stress-%d", i), client.NamespaceOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipstress: create namespace %d: %v\n", i, err)
			os.Exit(1)
		}
		adapters[i] = nsAdapter{ns: ns}
	}
	variant := fmt.Sprintf("%d namespaces, %d shards each, over tcp", nsCount, m.NumShards())
	if isolated {
		variant += " (isolated)"
	}
	fmt.Printf("skipstress: -net -namespaces, %d client conns, %v, universe %d, seed %d, lookup%%=%d, %s\n",
		threads, duration, checkUniverse, seed, lookupPct, variant)

	// Per-namespace worker budget: every namespace gets at least two
	// concurrent clients so its own history has real contention.
	perNS := threads / nsCount
	if perNS < 2 {
		perNS = 2
	}
	deadline := time.Now().Add(duration)
	rounds, totalOps, unknowns := 0, 0, 0
	snapshots := make([][]linearize.KV, nsCount)
	for time.Now().Before(deadline) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		failed := false
		for i := range adapters {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				roundSeed := seed + uint64(rounds)*1_000_003 + uint64(i)*7_654_321
				opts := maptest.WorkloadOptions{
					Clients:      perNS,
					OpsPerClient: 192,
					Universe:     checkUniverse,
					Seed:         roundSeed,
					// Same caveat as runNet: isolated shards merge per-shard
					// range snapshots taken at distinct instants.
					Ranges:    !isolated,
					Batches:   true,
					LookupPct: lookupPct,
				}
				h := maptest.RecordHistory(adapters[i], opts)
				res := linearize.CheckOpts(h, linearize.Options{Initial: snapshots[i]})
				mu.Lock()
				defer mu.Unlock()
				totalOps += len(h)
				if res.Unknown {
					unknowns++
				} else if !res.Ok {
					fmt.Fprintf(os.Stderr, "FAIL: non-linearizable history in namespace %s round %d (round seed %d), partition keys %v:\n%s",
						adapters[i].ns.Name(), rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
					failed = true
				}
				snapshots[i] = adapters[i].snapshot(checkUniverse)
			}(i)
		}
		wg.Wait()
		if failed {
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
		rounds++
	}

	// Tenant isolation spot check: each namespace's final state must be
	// exactly its own snapshot, and dropping one namespace must not
	// disturb the others.
	if err := cl.DropNamespace(adapters[0].ns.Name()); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: drop: %v\n", err)
		os.Exit(1)
	}
	if _, _, err := adapters[0].ns.Get(be64(1)); !errors.Is(err, client.ErrNamespaceNotFound) {
		fmt.Fprintf(os.Stderr, "FAIL: dropped namespace still answering (err %v)\n", err)
		os.Exit(1)
	}
	for i := 1; i < nsCount; i++ {
		after := adapters[i].snapshot(checkUniverse)
		if len(after) != len(snapshots[i]) {
			fmt.Fprintf(os.Stderr, "FAIL: namespace %s changed across a sibling drop: %d pairs, want %d\n",
				adapters[i].ns.Name(), len(after), len(snapshots[i]))
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
	}

	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: server drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-served; err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: serve: %v\n", err)
		os.Exit(1)
	}
	m.Close()
	fmt.Printf("rounds=%d ops=%d unknown=%d\n", rounds, totalOps, unknowns)
	fmt.Println("skipstress: PASS")
}

// be64 encodes a non-negative int64 as its order-preserving 8-byte
// big-endian string.
func be64(k int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(k))
	return b[:]
}

func unbe64(b []byte) int64 {
	if len(b) != 8 {
		fmt.Fprintf(os.Stderr, "skipstress: namespace value %x is not 8 bytes\n", b)
		os.Exit(1)
	}
	return int64(binary.BigEndian.Uint64(b))
}

// nsAdapter exposes one namespace handle through the conformance
// interface, bridging the int64 workload onto byte-string keys.
type nsAdapter struct {
	ns *client.Namespace
}

func (a nsAdapter) fatal(op string, err error) {
	fmt.Fprintf(os.Stderr, "skipstress: transport failure during %s %s: %v\n", a.ns.Name(), op, err)
	os.Exit(1)
}

func (a nsAdapter) Lookup(k int64) (int64, bool) {
	v, ok, err := a.ns.Get(be64(k))
	if err != nil {
		a.fatal("Get2", err)
	}
	if !ok {
		return 0, false
	}
	return unbe64(v), true
}

func (a nsAdapter) Insert(k, v int64) bool {
	ok, err := a.ns.Insert(be64(k), be64(v))
	if err != nil {
		a.fatal("Insert2", err)
	}
	return ok
}

func (a nsAdapter) Remove(k int64) bool {
	ok, err := a.ns.Remove(be64(k))
	if err != nil {
		a.fatal("Del2", err)
	}
	return ok
}

func (a nsAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	pairs, err := a.ns.Range(be64(l), be64(r), 0)
	if err != nil {
		a.fatal("Range2", err)
	}
	for _, p := range pairs {
		buf = append(buf, maptest.KV{Key: unbe64(p.Key), Val: unbe64(p.Val)})
	}
	return buf
}

// Batch implements maptest.Batcher over the wire's v2 atomic batch.
func (a nsAdapter) Batch(steps []linearize.Step) bool {
	ws := make([]client.BStep, len(steps))
	for i, s := range steps {
		switch s.Kind {
		case linearize.Insert:
			ws[i] = client.BStep{Kind: client.StepInsert, Key: be64(s.Key), Val: be64(s.Val)}
		case linearize.Remove:
			ws[i] = client.BStep{Kind: client.StepRemove, Key: be64(s.Key)}
		case linearize.Lookup:
			ws[i] = client.BStep{Kind: client.StepLookup, Key: be64(s.Key)}
		}
	}
	results, err := a.ns.Atomic(ws)
	if errors.Is(err, client.ErrCrossShard) {
		return false // rejected wholesale, no trace to linearize
	}
	if err != nil {
		a.fatal("Batch2", err)
	}
	if len(results) != len(steps) {
		a.fatal("Batch2", fmt.Errorf("%d results for %d steps", len(results), len(steps)))
	}
	for i := range steps {
		steps[i].Ok = results[i].Ok
		if results[i].Ok && steps[i].Kind == linearize.Lookup {
			steps[i].Out = unbe64(results[i].Val)
		}
	}
	return true
}

// snapshot reads the namespace's full state through the wire.
func (a nsAdapter) snapshot(universe int64) []linearize.KV {
	pairs, err := a.ns.Range(be64(0), be64(universe), 0)
	if err != nil {
		a.fatal("snapshot Range2", err)
	}
	out := make([]linearize.KV, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, linearize.KV{Key: unbe64(p.Key), Val: unbe64(p.Val)})
	}
	return out
}

// netAdapter exposes a protocol client through the conformance
// interface, so the recorded history is exactly what network callers
// observed. Transport errors are fatal: the stress tool's subject is a
// loopback server in the same process, where any failure is a bug.
type netAdapter struct {
	c *client.Client
}

func (a netAdapter) fatal(op string, err error) {
	fmt.Fprintf(os.Stderr, "skipstress: transport failure during %s: %v\n", op, err)
	os.Exit(1)
}

func (a netAdapter) Lookup(k int64) (int64, bool) {
	v, ok, err := a.c.Get(k)
	if err != nil {
		a.fatal("Get", err)
	}
	return v, ok
}

func (a netAdapter) Insert(k, v int64) bool {
	ok, err := a.c.Insert(k, v)
	if err != nil {
		a.fatal("Insert", err)
	}
	return ok
}

func (a netAdapter) Remove(k int64) bool {
	ok, err := a.c.Remove(k)
	if err != nil {
		a.fatal("Remove", err)
	}
	return ok
}

func (a netAdapter) Range(l, r int64, buf []maptest.KV) []maptest.KV {
	pairs, err := a.c.Range(l, r, 0)
	if err != nil {
		a.fatal("Range", err)
	}
	for _, p := range pairs {
		buf = append(buf, maptest.KV{Key: p.Key, Val: p.Val})
	}
	return buf
}

// Batch implements maptest.Batcher over the wire's atomic batch op.
func (a netAdapter) Batch(steps []linearize.Step) bool {
	ws := make([]wire.Step, len(steps))
	for i, s := range steps {
		switch s.Kind {
		case linearize.Insert:
			ws[i] = wire.Step{Kind: wire.StepInsert, Key: s.Key, Val: s.Val}
		case linearize.Remove:
			ws[i] = wire.Step{Kind: wire.StepRemove, Key: s.Key}
		case linearize.Lookup:
			ws[i] = wire.Step{Kind: wire.StepLookup, Key: s.Key}
		}
	}
	results, err := a.c.Atomic(ws)
	if errors.Is(err, client.ErrCrossShard) {
		return false // rejected wholesale, no trace to linearize
	}
	if err != nil {
		a.fatal("Atomic", err)
	}
	if len(results) != len(steps) {
		a.fatal("Atomic", fmt.Errorf("%d results for %d steps", len(results), len(steps)))
	}
	for i := range steps {
		steps[i].Ok = results[i].Ok
		steps[i].Out = results[i].Out
	}
	return true
}
