package main

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/skiphash"
)

// runResize is the online-resharding stress: the -check workload
// (recorded histories verified round by round against the sequential
// model) runs on a sharded map while a background resizer walks a
// seeded schedule of shard counts, so every round's history spans live
// grow and shrink migrations. Any non-linearizable round, resize
// error, or failed end-of-run audit exits 1 with a reproducer line.
func runResize(threads int, duration time.Duration, seed uint64, shards int,
	isolated bool, lookupPct int, reproducer string) {
	const checkUniverse = 64
	if shards <= 0 {
		shards = 2
	}
	cfg := skiphash.Config{Shards: shards, IsolatedShards: isolated}
	sm := skiphash.NewSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg)
	cm := shardedCheckAdapter{sm}
	variant := fmt.Sprintf("%d shards", sm.NumShards())
	if isolated {
		variant += " (isolated)"
	}
	fmt.Printf("skipstress: -resize, %d threads, %v, universe %d, seed %d, lookup%%=%d, %s\n",
		threads, duration, checkUniverse, seed, lookupPct, variant)

	// The resizer runs for the whole stress, including the inter-round
	// gaps: counts come from the seed so a failure replays, and each
	// transition is a full snapshot-copy + delta-replay migration under
	// whatever the recorder is doing at that moment.
	stop := make(chan struct{})
	var resizerWG sync.WaitGroup
	var resizes atomic.Uint64
	var errMu sync.Mutex
	var resizeErr error
	resizerWG.Add(1)
	go func() {
		defer resizerWG.Done()
		rng := rand.New(rand.NewPCG(seed, 0x4e512e))
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := 1 << (rng.Uint64() % 5) // 1..16 shards
			if _, err := sm.Resize(n); err != nil {
				errMu.Lock()
				if resizeErr == nil {
					resizeErr = fmt.Errorf("Resize(%d): %w", n, err)
				}
				errMu.Unlock()
				return
			}
			resizes.Add(1)
			time.Sleep(time.Duration(1+rng.Uint64()%4) * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(duration)
	rounds, totalOps, unknowns := 0, 0, 0
	var snapshot []linearize.KV
	for time.Now().Before(deadline) {
		roundSeed := seed + uint64(rounds)*1_000_003
		opts := maptest.WorkloadOptions{
			Clients:      threads,
			OpsPerClient: 192,
			Universe:     checkUniverse,
			Seed:         roundSeed,
			Ranges:       !isolated,
			PointQueries: !isolated,
			Batches:      true,
			LookupPct:    lookupPct,
		}
		h := maptest.RecordHistory(cm, opts)
		res := linearize.CheckOpts(h, linearize.Options{Initial: snapshot})
		totalOps += len(h)
		if res.Unknown {
			unknowns++
		} else if !res.Ok {
			fmt.Fprintf(os.Stderr, "FAIL: non-linearizable history in round %d (round seed %d), partition keys %v:\n%s",
				rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
			fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
			os.Exit(1)
		}
		// The workload is quiescent between rounds (only the resizer is
		// live, and resizes never change content), so per-key lookups
		// rebuild the exact state the next round starts from.
		snapshot = snapshot[:0]
		for k := int64(0); k < checkUniverse; k++ {
			if v, ok := cm.Lookup(k); ok {
				snapshot = append(snapshot, linearize.KV{Key: k, Val: v})
			}
		}
		rounds++
	}
	close(stop)
	resizerWG.Wait()

	failed := false
	if resizeErr != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %v\n", resizeErr)
		failed = true
	}
	sm.Quiesce()
	if err := sm.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: invariants after %d rounds: %v\n", rounds, err)
		failed = true
	}
	st := sm.ResizeStats()
	if st.Resizes == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: no resize changed the shard count; the run proved nothing")
		failed = true
	}
	fmt.Printf("rounds=%d ops=%d unknown=%d resizes=%d shards=%d keys-copied=%d delta-applied=%d cutovers=%d\n",
		rounds, totalOps, unknowns, resizes.Load(), sm.Shards(),
		st.KeysCopied, st.DeltaApplied, st.Cutovers)
	if failed {
		fmt.Fprintf(os.Stderr, "skipstress: FAILED\nreproduce with: %s\n", reproducer)
		os.Exit(1)
	}
	fmt.Println("skipstress: PASS")
}
