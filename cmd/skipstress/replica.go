package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/linearize"
	"repro/internal/maptest"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/skiphash"
	"repro/skiphash/client"
)

// runReplica is the replicated serving stress. Topology: one durable
// primary (temp dir, FsyncNone) streams its WAL to two in-process
// replicas; the primary and both replicas each serve the protocol on
// loopback TCP. The -check workload runs through a client whose
// lookups alternate plain primary reads with watermark-barriered
// replica reads, so the consistency contract — a replica whose
// watermark strictly exceeds X serves every commit at or below X — is
// inside the linearizability-checked box.
//
// Halfway through, a quiescent failover: the primary is shut down, the
// caught-up replica A is promoted over the wire, and the workload
// continues against A alone. Replica B is dropped from reads — commit
// stamps are only comparable within one primary lineage, and B never
// sees A's post-promotion commits. Every round's history, before and
// after the failover, must linearize; the promoted map must pass the
// final structural audit.
func runReplica(threads int, duration time.Duration, seed uint64, lookupPct int, reproducer string) {
	const checkUniverse = 64
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
		fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
		os.Exit(1)
	}

	// Primary: durable sharded map, WAL tapped into the streamer.
	pdir, err := os.MkdirTemp("", "skipstress-replica-*")
	if err != nil {
		fail("tempdir: %v", err)
	}
	defer os.RemoveAll(pdir)
	pm, err := skiphash.OpenSharded[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{
		Maintenance: true,
		Durability:  &skiphash.Durability{Dir: pdir, Fsync: skiphash.FsyncNone},
	}, skiphash.Int64Codec(), skiphash.Int64Codec())
	if err != nil {
		fail("open primary: %v", err)
	}
	clockRead := pm.Runtime().Clock().Read
	prim := repl.NewPrimary(repl.PrimaryConfig{
		Snapshot: func(chunkSize int, emit func(stamp uint64, pairs []wire.KV) error) error {
			kvs := make([]wire.KV, 0, chunkSize)
			return pm.SnapshotChunks(chunkSize, func(stamp uint64, pairs []skiphash.Pair[int64, int64]) error {
				kvs = kvs[:0]
				for _, p := range pairs {
					kvs = append(kvs, wire.KV{Key: p.Key, Val: p.Val})
				}
				return emit(stamp, kvs)
			})
		},
		ClockRead: clockRead,
	})
	tp, ok := pm.Persister().(interface {
		TapWAL(func(stamp uint64, count int, ops []byte))
	})
	if !ok {
		fail("persister %T has no WAL tap", pm.Persister())
	}
	tp.TapWAL(prim.Append)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail("replication listen: %v", err)
	}
	go prim.Serve(rln)

	listenServe := func(be server.Backend) (*server.Server, net.Listener) {
		srv := server.New(be, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("listen: %v", err)
		}
		go srv.Serve(ln)
		return srv, ln
	}
	srvP, lnP := listenServe(repl.PrimaryBackend(server.NewShardedBackend(pm), clockRead))

	// Two replicas, each serving its own read-only backend.
	newReplica := func() (*repl.Replica, *server.Server, net.Listener) {
		r := repl.NewReplica(repl.ReplicaConfig{Addr: rln.Addr().String(), RedialEvery: 20 * time.Millisecond})
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := r.WaitReady(ctx); err != nil {
			fail("replica catch-up: %v", err)
		}
		srv, ln := listenServe(r.Backend())
		return r, srv, ln
	}
	rA, srvA, lnA := newReplica()
	rB, srvB, lnB := newReplica()

	cl, err := client.Dial(lnP.Addr().String(), client.Options{
		Conns:    threads,
		Replicas: []string{lnA.Addr().String(), lnB.Addr().String()},
	})
	if err != nil {
		fail("dial: %v", err)
	}
	fmt.Printf("skipstress: -replica, %d client conns, %v, universe %d, seed %d, lookup%%=%d, primary + 2 replicas over tcp\n",
		threads, duration, checkUniverse, seed, lookupPct)

	runRounds := func(adapter maptest.OrderedMap, until time.Time, snapshot []linearize.KV,
		roundBase int) ([]linearize.KV, int, int, int) {
		rounds, totalOps, unknowns := 0, 0, 0
		for rounds == 0 || time.Now().Before(until) {
			roundSeed := seed + uint64(roundBase+rounds)*1_000_003
			opts := maptest.WorkloadOptions{
				Clients:      threads,
				OpsPerClient: 192,
				Universe:     checkUniverse,
				Seed:         roundSeed,
				Ranges:       true,
				Batches:      true,
				LookupPct:    lookupPct,
			}
			h := maptest.RecordHistory(adapter, opts)
			res := linearize.CheckOpts(h, linearize.Options{Initial: snapshot})
			totalOps += len(h)
			if res.Unknown {
				unknowns++
			} else if !res.Ok {
				fmt.Fprintf(os.Stderr, "FAIL: non-linearizable replicated history in round %d (round seed %d), partition keys %v:\n%s",
					roundBase+rounds, roundSeed, res.PartitionKeys, linearize.FormatOps(res.Ops))
				fmt.Fprintf(os.Stderr, "reproduce with: %s\n", reproducer)
				os.Exit(1)
			}
			pairs, err := cl.Range(0, checkUniverse, 0)
			if err != nil {
				fail("snapshot range: %v", err)
			}
			snapshot = snapshot[:0]
			for _, p := range pairs {
				snapshot = append(snapshot, linearize.KV{Key: p.Key, Val: p.Val})
			}
			rounds++
		}
		return snapshot, rounds, totalOps, unknowns
	}

	// Phase 1: primary serving, barriered reads fanning out over both
	// replicas.
	start := time.Now()
	snapshot, rounds1, ops1, unk1 := runRounds(&replAdapter{netAdapter: netAdapter{c: cl}},
		start.Add(duration/2), nil, 0)

	// Quiescent failover. The workload is joined, so a primary
	// watermark taken now covers every commit; both replicas must pass
	// it, and the caught-up replica A must hold exactly the primary's
	// state.
	x, err := cl.Watermark()
	if err != nil {
		fail("pre-failover watermark: %v", err)
	}
	waitDeadline := time.Now().Add(30 * time.Second)
	for rA.Watermark() <= x || rB.Watermark() <= x {
		if time.Now().After(waitDeadline) {
			fail("replicas did not pass primary watermark %d (A=%d B=%d)", x, rA.Watermark(), rB.Watermark())
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := pm.Range(math.MinInt64, math.MaxInt64, nil)
	got := rA.Map().Range(math.MinInt64, math.MaxInt64, nil)
	if len(want) != len(got) {
		fail("pre-promotion divergence: primary %d pairs, replica %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			fail("pre-promotion divergence at %+v vs %+v", want[i], got[i])
		}
	}

	// Kill the primary: serving drained, stream shut, map closed.
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srvP.Shutdown(ctx); err != nil {
		cancel()
		fail("primary drain: %v", err)
	}
	cancel()
	prim.Shutdown()
	pm.Close()

	// Promote A over the wire and repoint the client at it alone.
	cl, err = client.Dial(lnA.Addr().String(), client.Options{Conns: threads})
	if err != nil {
		fail("dial promoted: %v", err)
	}
	if err := cl.Promote(); err != nil {
		fail("promote: %v", err)
	}
	fmt.Printf("skipstress: failed over after %d rounds: promoted replica at watermark %d\n", rounds1, rA.Watermark())

	// Phase 2: the promoted node serves reads and writes; the history
	// continues from the snapshot the dead primary last produced.
	snapshot, rounds2, ops2, unk2 := runRounds(&replAdapter{netAdapter: netAdapter{c: cl}},
		start.Add(duration), snapshot, rounds1)
	_ = snapshot

	cl.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srvA.Shutdown(ctx2); err != nil {
		fail("promoted drain: %v", err)
	}
	if err := srvB.Shutdown(ctx2); err != nil {
		fail("replica B drain: %v", err)
	}
	rB.Close()

	mA := rA.Map()
	mA.Quiesce()
	if err := mA.CheckInvariants(skiphash.CheckOptions{}); err != nil {
		fail("promoted map invariants: %v", err)
	}
	rA.Close()
	fmt.Printf("rounds=%d ops=%d unknown=%d (pre-failover %d, post %d)\n",
		rounds1+rounds2, ops1+ops2, unk1+unk2, rounds1, rounds2)
	fmt.Println("skipstress: PASS")
}

// replAdapter drives lookups alternately through the plain primary
// read and the watermark-barriered replica read: the barrier stamp is
// taken inside the operation's invoke/return window, so whatever state
// the chosen replica serves is a valid linearization point — it
// contains every commit at or below the barrier and nothing that had
// not committed by the time the response arrived. With no replicas
// configured (post-promotion) every lookup is a plain read.
type replAdapter struct {
	netAdapter
	flip atomic.Uint64
}

func (a *replAdapter) Lookup(k int64) (int64, bool) {
	if a.c.NumReplicas() > 0 && a.flip.Add(1)&1 == 0 {
		x, err := a.c.Watermark()
		if err != nil {
			a.fatal("Watermark", err)
		}
		v, ok, err := a.c.GetAt(k, x)
		if err != nil {
			a.fatal("GetAt", err)
		}
		return v, ok
	}
	return a.netAdapter.Lookup(k)
}
