// Command skipbench regenerates the paper's evaluation: each subcommand
// reproduces one figure or table of §5 on the host machine, printing a
// text table (and optionally CSV) whose series match the paper's legends.
//
// Usage:
//
//	skipbench fig5 -mix a..f   # Figure 5: throughput vs thread count
//	skipbench fig6             # Figure 6: split roles vs range length
//	skipbench table1           # Table 1: fast-path aborts per query
//	skipbench shards           # shard-count sweep of the sharded variant
//	skipbench churn            # handle-churn windows: range throughput over time
//	skipbench persist          # durability overhead: WAL off vs fsync policies
//	skipbench net              # serving layer: closed-loop vs pipelined clients
//	skipbench read             # read fast path: optimistic Get vs transactional Get
//	skipbench repl             # replication: primary reads vs barriered replica fan-out
//	skipbench reshard          # online resharding: throughput while the shard count migrates live
//	skipbench all              # everything
//
// Flags:
//
//	-duration d   trial length (default 2s; paper uses 3s)
//	-trials n     trials per data point (default 1; paper uses 5)
//	-universe n   key universe size (default 1000000)
//	-threads list comma-separated thread counts (default: host-scaled sweep)
//	-csv file     append machine-readable rows to file
//	-json file    write per-workload throughput/abort-rate rows as JSON
//	-metrics-out file
//	              dump the run's obs metrics registry as JSON, rewritten
//	              after each experiment series completes
//	-quick        smoke-test mode (200ms trials, 2^16 universe)
//	-windows n    measurement windows for the churn experiment (default 6)
//	-dir path     base directory for the persist experiment's WAL dirs
//	              (default: a temp dir, removed afterwards)
//	-seed n       base seed for prefill and worker RNG streams (default 0,
//	              the historical streams); a fixed seed makes prefill and
//	              workload key sequences reproducible across runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		mix      = fs.String("mix", "a", "figure 5 workload letter (a-f)")
		duration = fs.Duration("duration", 2*time.Second, "trial length")
		trials   = fs.Int("trials", 1, "trials per data point")
		universe = fs.Int64("universe", 1_000_000, "key universe size")
		threads  = fs.String("threads", "", "comma-separated thread counts")
		csvPath  = fs.String("csv", "", "append CSV rows to this file")
		jsonPath = fs.String("json", "", "write JSON rows to this file")
		quick    = fs.Bool("quick", false, "smoke-test mode")
		seed     = fs.Uint64("seed", 0, "base seed for prefill and worker RNG streams")
		windows  = fs.Int("windows", 6, "measurement windows for the churn experiment")
		metOut   = fs.String("metrics-out", "", "dump the run's metrics registry as JSON to this file (rewritten after each series)")
		dir      = fs.String("dir", "", "base directory for the persist experiment's WAL dirs")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	opts := bench.Options{
		Duration: *duration,
		Trials:   *trials,
		Universe: *universe,
		Seed:     *seed,
	}
	if *quick {
		opts.Duration = 200 * time.Millisecond
		opts.Universe = 1 << 16
		if *threads == "" {
			opts.Threads = []int{1, 4}
		}
	}
	if *threads != "" {
		parsed, err := parseThreads(*threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skipbench:", err)
			os.Exit(2)
		}
		opts.Threads = parsed
	}
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skipbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.CSV = f
	}
	if *jsonPath != "" {
		opts.Report = &bench.Report{}
	}
	// flushMetrics rewrites the metrics dump; called after every series
	// so a long "all" run leaves usable output behind even when a later
	// experiment fails.
	flushMetrics := func() {}
	if *metOut != "" {
		opts.Metrics = obs.NewRegistry()
		flushMetrics = func() {
			if werr := writeMetrics(opts.Metrics, *metOut); werr != nil {
				fmt.Fprintln(os.Stderr, "skipbench: metrics dump:", werr)
			}
		}
	}

	var err error
	switch cmd {
	case "fig5":
		err = bench.Fig5(os.Stdout, *mix, opts)
	case "fig6":
		err = bench.Fig6(os.Stdout, opts)
	case "table1":
		err = bench.Table1(os.Stdout, opts)
	case "shards":
		err = bench.Shards(os.Stdout, opts)
	case "churn":
		err = bench.Churn(os.Stdout, *windows, opts)
	case "persist":
		err = bench.Persist(os.Stdout, *dir, opts)
	case "net":
		err = bench.Net(os.Stdout, opts)
	case "read":
		err = bench.ReadBench(os.Stdout, opts)
	case "repl":
		err = bench.Repl(os.Stdout, opts)
	case "reshard":
		err = bench.Reshard(os.Stdout, opts)
	case "all":
		for _, letter := range []string{"a", "b", "c", "d", "e", "f"} {
			if err = bench.Fig5(os.Stdout, letter, opts); err != nil {
				break
			}
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Fig6(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Table1(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Shards(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Churn(os.Stdout, *windows, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Persist(os.Stdout, *dir, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Net(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.ReadBench(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Repl(os.Stdout, opts)
			flushMetrics()
			fmt.Println()
		}
		if err == nil {
			err = bench.Reshard(os.Stdout, opts)
			flushMetrics()
		}
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "skipbench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	flushMetrics()
	if opts.Report != nil {
		// Best-effort even when an experiment failed: rows collected
		// before the failure are still worth keeping (the CSV path
		// likewise streams everything up to the error).
		if werr := writeReport(opts.Report, *jsonPath); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "skipbench:", err)
		os.Exit(1)
	}
}

// writeMetrics dumps the registry's flattened samples as indented JSON.
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(struct {
		Samples []obs.Sample `json:"samples"`
	}{Samples: reg.Samples()})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeReport(r *bench.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseThreads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: skipbench <fig5|fig6|table1|shards|churn|persist|net|read|repl|reshard|all> [flags]

Reproduces the evaluation of "Skip Hash: A Fast Ordered Map Via Software
Transactional Memory". Run "skipbench <cmd> -h" for flags.`)
}
