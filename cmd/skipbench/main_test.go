package main

import "testing"

func TestParseThreads(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"1", []int{1}, false},
		{"1,4,8", []int{1, 4, 8}, false},
		{" 2 , 6 ", []int{2, 6}, false},
		{"", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"x", nil, true},
		{"1,,2", nil, true},
	}
	for _, tt := range tests {
		got, err := parseThreads(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseThreads(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseThreads(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("parseThreads(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}
