package repro

import (
	"math/rand/v2"
	"testing"

	"repro/internal/bench"
	"repro/internal/stm"
	"repro/skiphash"
)

// benchUniverse keeps testing.B runs quick while preserving the paper's
// half-full population shape; skipbench uses the full 10^6 universe.
const benchUniverse = 1 << 16

// BenchmarkFig5 regenerates Figure 5's six workloads as sub-benchmarks:
// fig5<letter>/<map-series>. ns/op is the per-operation latency under
// GOMAXPROCS-way parallelism; the figures' Mops/s follow directly.
func BenchmarkFig5(b *testing.B) {
	for _, letter := range []string{"a", "b", "c", "d", "e", "f"} {
		wl := bench.Fig5Workloads[letter]
		wl.Universe = benchUniverse
		wl = workloadDefaults(wl)
		for _, mf := range bench.Fig5Maps(wl.RangePct == 0) {
			b.Run("fig5"+letter+"/"+mf.Name, func(b *testing.B) {
				runWorkloadBench(b, mf.New(), wl)
			})
		}
	}
}

func workloadDefaults(w bench.Workload) bench.Workload {
	if w.RangeLen == 0 {
		w.RangeLen = 100
	}
	return w
}

func runWorkloadBench(b *testing.B, m bench.Map, wl bench.Workload) {
	if wl.RangePct > 0 && !m.SupportsRange() {
		b.Skip("map does not support range queries")
	}
	bench.Prefill(m, wl.Universe, 7)
	var pairs int
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := m.NewWorker()
		rng := rand.New(rand.NewPCG(rand.Uint64(), 0x1234))
		for pb.Next() {
			die := int(rng.Uint64() % 100)
			k := int64(rng.Uint64() % uint64(wl.Universe))
			switch {
			case die < wl.LookupPct:
				w.Lookup(k)
			case die < wl.LookupPct+wl.UpdatePct:
				if rng.Uint64()&1 == 0 {
					w.Insert(k, k)
				} else {
					w.Remove(k)
				}
			default:
				pairs += w.Range(k, k+wl.RangeLen)
			}
		}
	})
	_ = pairs
}

// BenchmarkFig6 regenerates Figure 6's range-length sweep for the
// two-path skip hash and the strongest baseline at three representative
// lengths: fig6/<map>/len<2^e>. Range queries and updates interleave
// GOMAXPROCS-wide; skipbench fig6 runs the full split-role experiment.
func BenchmarkFig6(b *testing.B) {
	factories := []bench.MapFactory{
		{Name: "skiphash-two-path", New: func() bench.Map { return bench.NewSkipHash("two-path", 0) }},
		{Name: "skiphash-fast-only", New: func() bench.Map { return bench.NewSkipHash("fast", 0) }},
		{Name: "skiphash-slow-only", New: func() bench.Map { return bench.NewSkipHash("slow", 0) }},
		{Name: "skiphash-adaptive", New: func() bench.Map { return bench.NewSkipHash("adaptive", 0) }},
		{Name: "skiplist-bundled", New: func() bench.Map { return bench.NewBundleSkip("hwclock") }},
		{Name: "skiplist-vcas", New: func() bench.Map { return bench.NewVcasSkip("hwclock") }},
	}
	for _, ln := range []int64{1 << 4, 1 << 8, 1 << 12} {
		for _, mf := range factories {
			b.Run("fig6/"+mf.Name+"/len"+itoa(ln), func(b *testing.B) {
				wl := bench.Workload{UpdatePct: 50, RangePct: 50, Universe: benchUniverse, RangeLen: ln}
				runWorkloadBench(b, mf.New(), wl)
			})
		}
	}
}

// BenchmarkTable1 regenerates Table 1's abort-rate measurement: a
// fast-path-only skip hash under concurrent updates, reporting
// aborts/query as a benchmark metric for each range length.
func BenchmarkTable1(b *testing.B) {
	for _, ln := range []int64{1 << 10, 1 << 12, 1 << 14} {
		b.Run("table1/len"+itoa(ln), func(b *testing.B) {
			m := bench.NewSkipHash("fast", 0)
			bench.Prefill(m, benchUniverse, 7)
			before := m.RangeStats()
			wl := bench.Workload{UpdatePct: 90, RangePct: 10, Universe: benchUniverse, RangeLen: ln}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := m.NewWorker()
				rng := rand.New(rand.NewPCG(rand.Uint64(), 0x777))
				for pb.Next() {
					die := int(rng.Uint64() % 100)
					k := int64(rng.Uint64() % uint64(wl.Universe))
					if die < wl.UpdatePct {
						if rng.Uint64()&1 == 0 {
							w.Insert(k, k)
						} else {
							w.Remove(k)
						}
					} else {
						w.Range(k, k+wl.RangeLen)
					}
				}
			})
			b.StopTimer()
			s := m.RangeStats().Sub(before)
			if s.FastCommits > 0 {
				b.ReportMetric(float64(s.FastAborts)/float64(s.FastCommits), "aborts/query")
			} else {
				b.ReportMetric(float64(s.FastAborts), "aborts(no-commit)")
			}
		})
	}
}

// BenchmarkAblationClock compares the paper's clock choices (§5.1): the
// monotonic hardware-style clock against the GV1 fetch-and-add clock,
// on the skip hash's small transactions.
func BenchmarkAblationClock(b *testing.B) {
	for _, clk := range []struct {
		name string
		mk   func() stm.Clock
	}{
		{"hwclock", func() stm.Clock { return stm.NewMonotonicClock() }},
		{"gv1", func() stm.Clock { return stm.NewGV1() }},
		{"gv5", func() stm.Clock { return stm.NewGV5() }},
	} {
		b.Run("clock="+clk.name, func(b *testing.B) {
			m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, skiphash.Config{Clock: clk.mk()})
			pre := m.NewHandle()
			for k := int64(0); k < benchUniverse; k += 2 {
				pre.Insert(k, k)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := m.NewHandle()
				rng := rand.New(rand.NewPCG(rand.Uint64(), 0x99))
				for pb.Next() {
					k := int64(rng.Uint64() % benchUniverse)
					if rng.Uint64()&1 == 0 {
						h.Insert(k, k)
					} else {
						h.Remove(k)
					}
				}
			})
		})
	}
}

// BenchmarkAblationHashRouting isolates the composition's benefit (§3):
// the same update workload against the skip hash (hash-routed, O(1)
// removes) and the bare STM skip list (O(log n) searches).
func BenchmarkAblationHashRouting(b *testing.B) {
	for _, mf := range []bench.MapFactory{
		{Name: "skiphash", New: func() bench.Map { return bench.NewSkipHash("two-path", 0) }},
		{Name: "stm-skiplist", New: func() bench.Map { return bench.NewStmSkip() }},
	} {
		b.Run("routing="+mf.Name, func(b *testing.B) {
			wl := bench.Workload{UpdatePct: 100, Universe: benchUniverse}
			runWorkloadBench(b, mf.New(), workloadDefaults(wl))
		})
	}
}

// BenchmarkAblationRemovalBuffer measures §4.5's per-thread removal
// buffer against the unbuffered Figure 4 protocol under slow-path range
// pressure.
func BenchmarkAblationRemovalBuffer(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    skiphash.Config
	}{
		{"buffered-32", skiphash.Config{SlowOnly: true}},
		{"unbuffered", skiphash.Config{SlowOnly: true, RemovalBufferSize: -1}},
	} {
		b.Run("removals="+cfg.name, func(b *testing.B) {
			m := skiphash.New[int64, int64](skiphash.Int64Less, skiphash.Hash64, cfg.c)
			pre := m.NewHandle()
			for k := int64(0); k < benchUniverse; k += 2 {
				pre.Insert(k, k)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := m.NewHandle()
				rng := rand.New(rand.NewPCG(rand.Uint64(), 0x55))
				var buf []skiphash.Pair[int64, int64]
				for pb.Next() {
					k := int64(rng.Uint64() % benchUniverse)
					switch rng.Uint64() % 10 {
					case 0:
						buf = h.Range(k, k+256, buf[:0])
					default:
						if rng.Uint64()&1 == 0 {
							h.Insert(k, k)
						} else {
							h.Remove(k)
						}
					}
				}
			})
		})
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var digits [20]byte
	i := len(digits)
	for n > 0 {
		i--
		digits[i] = byte('0' + n%10)
		n /= 10
	}
	return string(digits[i:])
}
