package repro

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/baseline/bundleskip"
	"repro/internal/baseline/vcasbst"
	"repro/internal/baseline/vcasskip"
	"repro/internal/bench"
	"repro/internal/kv"
)

// TestDifferentialSequential drives one pseudo-random operation stream
// through every map implementation and demands identical answers at
// every step — the skip hash, all of its variants, and every baseline
// implement the same abstract ordered map, so any divergence is a bug in
// one of them.
func TestDifferentialSequential(t *testing.T) {
	subjects := []bench.Map{
		bench.NewSkipHash("two-path", 1021),
		bench.NewSkipHash("fast", 1021),
		bench.NewSkipHash("slow", 1021),
		bench.NewSkipHash("adaptive", 1021),
		bench.NewVcasBST("hwclock"),
		bench.NewVcasSkip("hwclock"),
		bench.NewBundleSkip("hwclock"),
	}
	workers := make([]bench.Worker, len(subjects))
	for i, s := range subjects {
		workers[i] = s.NewWorker()
	}
	rng := rand.New(rand.NewPCG(2024, 7466))
	const universe = 512
	for step := 0; step < 20000; step++ {
		k := int64(rng.Uint64() % universe)
		switch rng.Uint64() % 4 {
		case 0:
			want := workers[0].Insert(k, k*3)
			for i := 1; i < len(workers); i++ {
				if got := workers[i].Insert(k, k*3); got != want {
					t.Fatalf("step %d: %s Insert(%d) = %v, %s said %v",
						step, subjects[i].Name(), k, got, subjects[0].Name(), want)
				}
			}
		case 1:
			want := workers[0].Remove(k)
			for i := 1; i < len(workers); i++ {
				if got := workers[i].Remove(k); got != want {
					t.Fatalf("step %d: %s Remove(%d) = %v, %s said %v",
						step, subjects[i].Name(), k, got, subjects[0].Name(), want)
				}
			}
		case 2:
			want := workers[0].Lookup(k)
			for i := 1; i < len(workers); i++ {
				if got := workers[i].Lookup(k); got != want {
					t.Fatalf("step %d: %s Lookup(%d) = %v, %s said %v",
						step, subjects[i].Name(), k, got, subjects[0].Name(), want)
				}
			}
		case 3:
			r := k + int64(rng.Uint64()%64)
			want := workers[0].Range(k, r)
			for i := 1; i < len(workers); i++ {
				if got := workers[i].Range(k, r); got != want {
					t.Fatalf("step %d: %s Range(%d,%d) = %d pairs, %s said %d",
						step, subjects[i].Name(), k, r, got, subjects[0].Name(), want)
				}
			}
		}
	}
}

// TestDifferentialFinalState runs a concurrent phase with per-subject
// deterministic per-key outcomes (each goroutine owns a key stripe), and
// then compares the final sorted contents of every implementation.
func TestDifferentialFinalState(t *testing.T) {
	subjects := []struct {
		name string
		m    kvMap
	}{
		{"vcasbst", vcasbst.New(vcasbst.Config{})},
		{"vcasskip", vcasskip.New(vcasskip.Config{})},
		{"bundleskip", bundleskip.New(bundleskip.Config{})},
	}
	const stripes = 8
	const perStripe = 128
	const universe = stripes * perStripe
	for _, s := range subjects {
		var wg sync.WaitGroup
		for g := 0; g < stripes; g++ {
			wg.Add(1)
			go func(base int64) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(base), 5))
				// Deterministic end state per stripe regardless of
				// interleaving: last op per key decided by a fixed
				// schedule.
				for round := 0; round < 50; round++ {
					for i := int64(0); i < perStripe; i++ {
						k := base + i
						if (uint64(round)+rng.Uint64())&1 == 0 {
							s.m.Insert(k, k)
						} else {
							s.m.Remove(k)
						}
					}
				}
				// Final deterministic pass: evens present, odds absent.
				for i := int64(0); i < perStripe; i++ {
					k := base + i
					if i%2 == 0 {
						s.m.Insert(k, k)
					} else {
						s.m.Remove(k)
					}
				}
			}(int64(g) * perStripe)
		}
		wg.Wait()
		got := s.m.Range(0, universe, nil)
		if len(got) != universe/2 {
			t.Errorf("%s: final population %d, want %d", s.name, len(got), universe/2)
			continue
		}
		for i, p := range got {
			if p.Key != int64(i*2) {
				t.Errorf("%s: position %d holds key %d, want %d", s.name, i, p.Key, i*2)
				break
			}
		}
	}
}

// kvMap is the native int64 interface every baseline implements.
type kvMap interface {
	Insert(k, v int64) bool
	Remove(k int64) bool
	Range(l, r int64, buf []kv.KV) []kv.KV
}
